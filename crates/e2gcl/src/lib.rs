//! # E²GCL — Efficient and Expressive Contrastive Learning on GNNs
//!
//! A from-scratch Rust reproduction of *"E²GCL: Efficient and Expressive
//! Contrastive Learning on Graph Neural Networks"* (ICDE 2024): the
//! representative-node selector (§III), the locality-preserving view
//! generator (§IV), the contrastive training loop (Alg. 1), every baseline
//! of the paper's evaluation, and the evaluation protocol itself.
//!
//! ## Quick start
//!
//! ```
//! use e2gcl::prelude::*;
//!
//! // A small synthetic citation-style graph (Cora analog at 10% scale).
//! let data = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.1, 7);
//!
//! // Pre-train with E²GCL: coreset selection + importance-aware views.
//! let model = E2gclModel::default();
//! let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
//! let mut rng = SeedRng::new(0);
//! let out = model.pretrain(&data.graph, &data.features, &cfg, &mut rng).unwrap();
//!
//! // Evaluate with the paper's linear-probe protocol.
//! let acc = e2gcl::eval::node_classification_accuracy(
//!     &out.embeddings, &data.labels, data.num_classes, 0,
//! );
//! assert!(acc > 0.0);
//! ```
//!
//! ## Crate map
//!
//! * [`config`] — shared training hyperparameters;
//! * [`engine`] — the [`engine::EpochDriver`] epoch loop every model trains
//!   through (numeric guard, fault injection, backoff, checkpoints, scratch
//!   reuse); models implement [`engine::EpochStep`];
//! * [`models`] — [`models::ContrastiveModel`] implementations: E²GCL and
//!   the GRACE / GCA / MVGRL / BGRL / AFGRL / DGI / GAE / VGAE / ADGCL /
//!   DeepWalk / Node2Vec baselines;
//! * [`eval`] — the §V-A2 protocol: frozen-encoder linear probe for node
//!   classification, link prediction, graph classification, plus the
//!   supervised GCN / MLP references;
//! * [`pipeline`] — Alg. 1 end-to-end runs with timing (drives Tables IV–IX
//!   and every figure);
//! * re-exported substrate crates: [`e2gcl_graph`], [`e2gcl_linalg`],
//!   [`e2gcl_nn`], [`e2gcl_selector`], [`e2gcl_views`], [`e2gcl_datasets`].

pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod engine;
pub mod eval;
pub mod guard;
pub mod metrics;
pub mod models;
pub mod pipeline;

pub use checkpoint::{StepState, TrainCheckpoint};
pub use config::{DurableConfig, MinibatchConfig, TrainConfig};
pub use e2gcl_linalg::TrainError;
pub use engine::{EngineRun, EpochCtx, EpochDriver, EpochOutcome, EpochStep};
pub use guard::{FaultPlan, GuardAction, GuardConfig, GuardPolicy, GuardState, NumericGuard};
pub use models::{ContrastiveModel, PretrainResult};

// Re-export the substrate crates under one roof.
pub use e2gcl_datasets as datasets;
pub use e2gcl_graph as graph;
pub use e2gcl_linalg as linalg;
pub use e2gcl_nn as nn;
pub use e2gcl_selector as selector;
pub use e2gcl_views as views;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::config::{DurableConfig, LossStrategy, MinibatchConfig, TrainConfig};
    pub use crate::eval;
    pub use crate::guard::{FaultPlan, GuardConfig, GuardPolicy, NumericGuard};
    pub use crate::models::{
        e2gcl_model::{
            E2gclConfig, E2gclModel, EncoderKind, LossKind, SelectorKind, ViewMode, ViewStrategy,
        },
        ContrastiveModel, PretrainResult,
    };
    pub use e2gcl_datasets::{spec, GraphDataset, NodeDataset};
    pub use e2gcl_graph::CsrGraph;
    pub use e2gcl_linalg::{Matrix, SeedRng, TrainError};
}
