//! The unified epoch-driver training engine.
//!
//! Every model in [`crate::models`] used to own a copy of the same ~40-line
//! epoch loop: compute an update, apply the fault plan, scan for NaN/Inf,
//! ask the [`NumericGuard`] for a verdict, then step / skip / retry and
//! record losses and checkpoints. This module hoists that loop into one
//! place — [`EpochDriver`] — and reduces each model to an [`EpochStep`]:
//! the model-specific "one epoch of work" (views, forwards, loss,
//! backward) plus small hooks for applying the verified update.
//!
//! The driver is the **only** production call site of [`NumericGuard::new`]
//! and [`NumericGuard::inspect`] (`ci.sh` enforces this), so guard policy
//! changes land in every model at once, and a model physically cannot
//! forget to route its update through the guard.
//!
//! The split is engineered to be bit-identical to the loops it replaced:
//! the driver performs the exact sequence the models did —
//! `corrupt_loss → corrupt_gradients → grads scan → inspect → clip →
//! apply → record` — and steps draw randomness only inside
//! [`EpochStep::epoch`], so the RNG streams are unchanged.
//!
//! Steps that want allocation-free steady-state epochs thread the
//! driver-owned [`TrainScratch`] (plus their own encoder workspaces)
//! through their buffers; see `DESIGN.md` §"Training engine".

use crate::checkpoint::{config_fingerprint, StepState, TrainCheckpoint};
use crate::config::TrainConfig;
use crate::guard::{FaultPlan, GuardAction, NumericGuard};
use e2gcl_linalg::{Matrix, TrainError};
use e2gcl_nn::{optim, TrainScratch};
use std::path::Path;
use std::time::Instant;

/// Everything an [`EpochStep`] may use while computing one epoch.
pub struct EpochCtx<'a> {
    /// Epoch counter. Stable across backoff retries of the same epoch, so
    /// epoch-keyed fault injection re-hits a retried epoch.
    pub epoch: usize,
    /// Effective learning rate for this attempt:
    /// [`EpochStep::base_lr`]` * `[`NumericGuard::lr_scale`].
    pub lr: f32,
    /// The run's fault plan. The driver applies `corrupt_loss` /
    /// `corrupt_gradients` itself; steps apply [`FaultPlan::corrupt_features`]
    /// to their view features so an injected NaN travels the exact path a
    /// real one would.
    pub fault: &'a FaultPlan,
    /// The driver-owned guard, exposed read-only for
    /// [`NumericGuard::embeddings_bad`] scans.
    pub guard: &'a NumericGuard,
    /// Reusable pool for role-less transient matrices.
    pub scratch: &'a mut TrainScratch,
}

/// What one call to [`EpochStep::epoch`] produced.
#[derive(Debug)]
pub enum EpochOutcome {
    /// A normal epoch: the update is staged in [`EpochStep::grads_mut`],
    /// awaiting the guard's verdict.
    Step {
        /// The epoch's (pre-fault-plan) loss.
        loss: f32,
        /// Result of the step's [`NumericGuard::embeddings_bad`] scan over
        /// whatever embedding matrices it considers health-relevant.
        embeddings_bad: bool,
    },
    /// Nothing to update this epoch (e.g. every batch degenerated); advance
    /// without consulting the guard or recording a loss.
    SkipSilently,
    /// Training cannot proceed at all (e.g. an empty anchor set); end the
    /// run early with whatever has been recorded so far.
    Stop,
}

/// One model's epoch of work, driven by [`EpochDriver::run`].
///
/// The contract mirrors the loops this trait replaced:
///
/// 1. [`epoch`](Self::epoch) does everything up to (not including) the
///    optimiser step and leaves the primary gradients in
///    [`grads_mut`](Self::grads_mut);
/// 2. the driver corrupts/scans/clips those gradients and consults the
///    guard;
/// 3. on `Proceed` the driver calls [`apply`](Self::apply) with the
///    effective learning rate, then [`embed`](Self::embed) on checkpoint
///    epochs.
///
/// Updates that happen *inside* `epoch` (e.g. GRACE's projection-head SGD)
/// are before the guard by construction, exactly as in the original loops.
pub trait EpochStep {
    /// Runs one epoch: sample views, forward, loss, backward. Must stage
    /// the primary gradient matrices for [`Self::grads_mut`].
    fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome;

    /// The epoch's primary gradient matrices — the fault-injection,
    /// NaN-scan and (by default) clipping target.
    fn grads_mut(&mut self) -> &mut [Matrix];

    /// NaN/Inf scan over any auxiliary gradients that live outside
    /// [`Self::grads_mut`] (e.g. DGI's discriminator gradient).
    fn aux_grads_bad(&self) -> bool {
        false
    }

    /// Clips gradients to the configured global norm. The default treats
    /// [`Self::grads_mut`] as one group; steps with several independently
    /// clipped parameter groups (MVGRL's two encoders) override.
    fn clip(&mut self, max_norm: f32) {
        optim::clip_grad_norm(self.grads_mut(), max_norm);
    }

    /// Applies the guard-approved update: optimiser steps, EMA target
    /// refresh, auxiliary ascent. `loss` is the epoch's recorded loss
    /// (after the fault plan — ADGCL's REINFORCE baseline tracks it).
    fn apply(&mut self, epoch: usize, lr: f32, loss: f32);

    /// Current inference-time embeddings, used for checkpoints and the
    /// final result.
    fn embed(&mut self) -> Matrix;

    /// Base learning rate before guard backoff scaling. Defaults to the
    /// shared `cfg.lr`; the walk models train with their own.
    fn base_lr(&self, cfg: &TrainConfig) -> f32 {
        cfg.lr
    }

    /// False when the step's updates are applied in place during
    /// [`Self::epoch`] and cannot be discarded (the SGNS walk models). A
    /// `RetryEpoch` verdict then records the loss and advances instead of
    /// re-running, so bad updates are not replayed on top of themselves.
    fn discard_supported(&self) -> bool {
        true
    }

    /// Captures the step's mutable cross-epoch state (weights, optimiser
    /// moments, RNG positions) for a durable checkpoint. `None` — the
    /// default — means the model does not support resumable checkpoints;
    /// the driver then fails a durable run with a typed
    /// [`TrainError::Checkpoint`] instead of silently writing a checkpoint
    /// that cannot actually resume.
    fn snapshot(&mut self) -> Option<StepState> {
        None
    }

    /// Restores state captured by [`Self::snapshot`] into a freshly
    /// constructed step (the immutable setup — selection, views, initial
    /// weights — must already have been rebuilt under the original seed).
    fn restore(&mut self, state: &StepState) -> Result<(), TrainError> {
        let _ = state;
        Err(TrainError::Checkpoint(
            "model does not support resumable checkpoints".into(),
        ))
    }
}

/// The training half of a [`crate::models::PretrainResult`], produced by
/// [`EpochDriver::run`]. The caller adds its own timing bookkeeping.
#[derive(Debug)]
pub struct EngineRun {
    /// Final embeddings ([`EpochStep::embed`] after the last epoch).
    pub embeddings: Matrix,
    /// One recorded loss per non-silent epoch.
    pub loss_curve: Vec<f32>,
    /// `(seconds since `start`, embeddings)` checkpoints.
    pub checkpoints: Vec<(f64, Matrix)>,
}

/// Owns the epoch loop shared by every model: guard, fault plan, loss
/// curve, checkpoint schedule and the reusable [`TrainScratch`].
pub struct EpochDriver<'a> {
    cfg: &'a TrainConfig,
    guard: NumericGuard,
    fault: FaultPlan,
    scratch: TrainScratch,
}

impl<'a> EpochDriver<'a> {
    /// A fresh driver for one training run. This is the single production
    /// call site of [`NumericGuard::new`].
    pub fn new(cfg: &'a TrainConfig) -> Self {
        Self {
            cfg,
            guard: NumericGuard::new(&cfg.guard),
            fault: cfg.fault.clone().unwrap_or_default(),
            scratch: TrainScratch::new(),
        }
    }

    /// Drives `step` for `cfg.epochs` epochs. `start` is the caller's
    /// run-start instant (checkpoint timestamps are measured from it, so
    /// they include the caller's setup work, as before).
    ///
    /// This is the single production call site of [`NumericGuard::inspect`].
    pub fn run<S: EpochStep + ?Sized>(
        mut self,
        step: &mut S,
        start: Instant,
    ) -> Result<EngineRun, TrainError> {
        let cfg = self.cfg;
        let mut loss_curve = Vec::with_capacity(cfg.epochs);
        let mut checkpoints = Vec::new();
        let mut epoch = 0;
        // Durable resume: restore the step/guard state and pick the loop up
        // at the recorded epoch. Setup before this point (selection, views,
        // weight init) already replayed deterministically under the run's
        // original seed, so restoring the mutable state is sufficient for a
        // bitwise-identical continuation.
        let cfg_hash = cfg.durable.as_ref().map(|_| config_fingerprint(cfg));
        if let Some(d) = cfg.durable.as_ref().filter(|d| d.resume) {
            let ckpt = TrainCheckpoint::load_durable(Path::new(&d.path))?;
            if Some(ckpt.cfg_hash) != cfg_hash {
                return Err(TrainError::Checkpoint(format!(
                    "{}: checkpoint was produced under a different training config",
                    d.path
                )));
            }
            step.restore(&ckpt.step)?;
            self.guard.restore_state(&ckpt.guard);
            epoch = ckpt.next_epoch;
            loss_curve = ckpt.loss_curve;
            checkpoints = ckpt.snapshots;
        }
        while epoch < cfg.epochs {
            let lr = step.base_lr(cfg) * self.guard.lr_scale;
            let outcome = {
                let mut cx = EpochCtx {
                    epoch,
                    lr,
                    fault: &self.fault,
                    guard: &self.guard,
                    scratch: &mut self.scratch,
                };
                step.epoch(&mut cx)
            };
            let (loss, emb_bad) = match outcome {
                EpochOutcome::Step {
                    loss,
                    embeddings_bad,
                } => (loss, embeddings_bad),
                EpochOutcome::SkipSilently => {
                    epoch += 1;
                    continue;
                }
                EpochOutcome::Stop => break,
            };
            let loss = self.fault.corrupt_loss(epoch, loss);
            self.fault.corrupt_gradients(epoch, step.grads_mut());
            let grads_bad = optim::grads_non_finite(step.grads_mut()) || step.aux_grads_bad();
            match self.guard.inspect(epoch, loss, grads_bad, emb_bad)? {
                GuardAction::Proceed => {
                    if let Some(max) = cfg.guard.max_grad_norm {
                        step.clip(max);
                    }
                    step.apply(epoch, lr, loss);
                    loss_curve.push(loss);
                    if let Some(every) = cfg.checkpoint_every {
                        if (epoch + 1) % every == 0 || epoch + 1 == cfg.epochs {
                            checkpoints.push((start.elapsed().as_secs_f64(), step.embed()));
                        }
                    }
                    if let Some(d) = cfg.durable.as_ref() {
                        if (epoch + 1) % d.every_epochs == 0 || epoch + 1 == cfg.epochs {
                            let state = step.snapshot().ok_or_else(|| {
                                TrainError::Checkpoint(
                                    "model does not support resumable checkpoints".into(),
                                )
                            })?;
                            let ckpt = TrainCheckpoint {
                                next_epoch: epoch + 1,
                                cfg_hash: cfg_hash.unwrap_or_default(),
                                guard: self.guard.state(),
                                loss_curve: loss_curve.clone(),
                                snapshots: checkpoints.clone(),
                                step: state,
                            };
                            ckpt.save_durable(Path::new(&d.path))?;
                        }
                    }
                    epoch += 1;
                }
                GuardAction::SkipEpoch => {
                    loss_curve.push(loss);
                    epoch += 1;
                }
                GuardAction::RetryEpoch { .. } => {
                    if !step.discard_supported() {
                        loss_curve.push(loss);
                        epoch += 1;
                    }
                }
            }
        }
        Ok(EngineRun {
            embeddings: step.embed(),
            loss_curve,
            checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardPolicy;

    /// A minimal step: scalar "parameter" descending a quadratic, gradient
    /// staged in one 1×1 matrix.
    struct ToyStep {
        p: f32,
        grads: Vec<Matrix>,
        applied: Vec<usize>,
        lrs: Vec<f32>,
    }

    impl ToyStep {
        fn new() -> Self {
            Self {
                p: 4.0,
                grads: vec![Matrix::zeros(1, 1)],
                applied: Vec::new(),
                lrs: Vec::new(),
            }
        }
    }

    impl EpochStep for ToyStep {
        fn epoch(&mut self, _cx: &mut EpochCtx<'_>) -> EpochOutcome {
            *self.grads[0].as_mut_slice().first_mut().unwrap() = self.p;
            EpochOutcome::Step {
                loss: 0.5 * self.p * self.p,
                embeddings_bad: false,
            }
        }

        fn grads_mut(&mut self) -> &mut [Matrix] {
            &mut self.grads
        }

        fn apply(&mut self, epoch: usize, lr: f32, _loss: f32) {
            self.p -= lr * self.grads[0].get(0, 0);
            self.applied.push(epoch);
            self.lrs.push(lr);
        }

        fn embed(&mut self) -> Matrix {
            Matrix::filled(1, 1, self.p)
        }
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            checkpoint_every: Some(2),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn healthy_run_applies_every_epoch_and_checkpoints() {
        let cfg = cfg(5);
        let mut step = ToyStep::new();
        let run = EpochDriver::new(&cfg)
            .run(&mut step, Instant::now())
            .unwrap();
        assert_eq!(step.applied, vec![0, 1, 2, 3, 4]);
        assert_eq!(run.loss_curve.len(), 5);
        // Epochs 2, 4 and the final epoch 5.
        assert_eq!(run.checkpoints.len(), 3);
        assert!(step.p < 4.0);
        assert_eq!(run.embeddings.get(0, 0), step.p);
    }

    #[test]
    fn fault_plan_triggers_backoff_and_halved_lr() {
        let mut cfg = cfg(3);
        cfg.fault = Some(FaultPlan::nan_loss(&[1]));
        cfg.guard.policy = GuardPolicy::Backoff { max_retries: 2 };
        let mut step = ToyStep::new();
        let err = EpochDriver::new(&cfg).run(&mut step, Instant::now());
        // The fault is epoch-keyed, so both retries re-hit it and the
        // budget exhausts.
        assert!(err.is_err());
        assert_eq!(step.applied, vec![0]);
    }

    #[test]
    fn skip_policy_records_loss_without_applying() {
        let mut cfg = cfg(3);
        cfg.fault = Some(FaultPlan::nan_loss(&[1]));
        cfg.guard.policy = GuardPolicy::SkipEpoch;
        let mut step = ToyStep::new();
        let run = EpochDriver::new(&cfg)
            .run(&mut step, Instant::now())
            .unwrap();
        assert_eq!(step.applied, vec![0, 2]);
        assert_eq!(run.loss_curve.len(), 3);
        assert!(run.loss_curve[1].is_nan());
    }

    #[test]
    fn gradient_faults_are_injected_into_primary_grads() {
        let mut cfg = cfg(2);
        cfg.fault = Some(FaultPlan::nan_gradients(&[0]));
        cfg.guard.policy = GuardPolicy::SkipEpoch;
        let mut step = ToyStep::new();
        let run = EpochDriver::new(&cfg)
            .run(&mut step, Instant::now())
            .unwrap();
        assert_eq!(step.applied, vec![1]);
        assert_eq!(run.loss_curve.len(), 2);
    }

    #[test]
    fn retry_without_discard_support_advances() {
        struct NoDiscard(ToyStep);
        impl EpochStep for NoDiscard {
            fn epoch(&mut self, cx: &mut EpochCtx<'_>) -> EpochOutcome {
                self.0.epoch(cx)
            }
            fn grads_mut(&mut self) -> &mut [Matrix] {
                self.0.grads_mut()
            }
            fn apply(&mut self, epoch: usize, lr: f32, loss: f32) {
                self.0.apply(epoch, lr, loss);
            }
            fn embed(&mut self) -> Matrix {
                self.0.embed()
            }
            fn discard_supported(&self) -> bool {
                false
            }
        }
        let mut cfg = cfg(3);
        cfg.fault = Some(FaultPlan::nan_loss(&[1]));
        cfg.guard.policy = GuardPolicy::Backoff { max_retries: 5 };
        let mut step = NoDiscard(ToyStep::new());
        let run = EpochDriver::new(&cfg)
            .run(&mut step, Instant::now())
            .unwrap();
        // The faulted epoch is recorded once and training moves on, with
        // the halved lr persisting for later epochs.
        assert_eq!(step.0.applied, vec![0, 2]);
        assert_eq!(run.loss_curve.len(), 3);
        assert_eq!(step.0.lrs[1], 0.5 * step.0.lrs[0]);
    }

    #[test]
    fn stop_ends_the_run_early() {
        struct Stopper;
        impl EpochStep for Stopper {
            fn epoch(&mut self, _cx: &mut EpochCtx<'_>) -> EpochOutcome {
                EpochOutcome::Stop
            }
            fn grads_mut(&mut self) -> &mut [Matrix] {
                &mut []
            }
            fn apply(&mut self, _epoch: usize, _lr: f32, _loss: f32) {}
            fn embed(&mut self) -> Matrix {
                Matrix::zeros(1, 1)
            }
        }
        let cfg = cfg(10);
        let run = EpochDriver::new(&cfg)
            .run(&mut Stopper, Instant::now())
            .unwrap();
        assert!(run.loss_curve.is_empty());
        assert!(run.checkpoints.is_empty());
    }

    #[test]
    fn clipping_is_applied_before_the_update() {
        let mut cfg = cfg(1);
        cfg.guard.max_grad_norm = Some(1.0);
        let mut step = ToyStep::new();
        EpochDriver::new(&cfg)
            .run(&mut step, Instant::now())
            .unwrap();
        // Gradient was p = 4.0, clipped to norm 1.0 before apply.
        assert_eq!(step.p, 4.0 - step.lrs[0] * 1.0);
    }
}
