//! Crash-safe filesystem primitives shared by checkpoints and artifacts.
//!
//! The serving layer's artifacts and the training engine's durable
//! checkpoints have the same durability problem: a process can die midway
//! through `write`, leaving a prefix of the file on disk that a later
//! reader mistakes for the real thing. This module centralises the two
//! answers the workspace uses:
//!
//! * [`atomic_write`] — write-to-temp → fsync → rename. The destination
//!   path only ever holds a complete file: readers either see the old
//!   bytes, the new bytes, or nothing, never a torn prefix.
//! * [`quarantine`] — when a reader *does* find a corrupt file (torn by a
//!   non-atomic writer, bit-rotted, truncated by a full disk), it is
//!   renamed to `<name>.corrupt` next to the original so the path is
//!   immediately reusable and the evidence survives for debugging.
//!
//! [`write_torn`] is the matching deterministic fault hook: it bypasses
//! the atomic protocol on purpose and leaves exactly the torn prefix a
//! mid-write crash would, so crash-safety tests don't need to race real
//! process kills.

use std::io::Write;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash — the workspace's standard integrity checksum,
/// defined once in [`e2gcl_linalg::hash`] and re-exported here for the
/// checkpoint/artifact call sites that historically used this path.
pub use e2gcl_linalg::hash::{fnv1a64, Fnv1a64};

/// Durably replaces `path` with `bytes`: writes a sibling temp file, fsyncs
/// it, renames it over `path`, then best-effort fsyncs the parent directory
/// so the rename itself survives a crash.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = sibling(path, ".tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename durable; failure here (e.g. on
        // filesystems that refuse to open directories) does not affect
        // atomicity, only the crash window, so it is deliberately ignored.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Deterministic torn-write fault: writes only the first `keep` bytes of
/// `bytes` straight to `path` (no temp file, no fsync) — the exact on-disk
/// state a crash midway through a naive `fs::write` leaves behind.
pub fn write_torn(path: &Path, bytes: &[u8], keep: usize) -> std::io::Result<()> {
    std::fs::write(path, &bytes[..keep.min(bytes.len())])
}

/// Moves a corrupt file out of the way, renaming it to `<name>.corrupt`
/// next to the original. Returns the quarantine path.
pub fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let dst = sibling(path, ".corrupt");
    std::fs::rename(path, &dst)?;
    Ok(dst)
}

/// `path` with `suffix` appended to its file name, in the same directory
/// (same filesystem, so `rename` stays atomic).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_temp() {
        let path = tmp_path("e2gcl_durable_atomic.bin");
        atomic_write(&path, b"hello durable").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello durable");
        assert!(
            !sibling(&path, ".tmp").exists(),
            "temp file must not linger"
        );
        // Overwrite is also atomic (rename over an existing file).
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let path = tmp_path("e2gcl_durable_torn.bin");
        write_torn(&path, b"0123456789", 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        // keep beyond len is clamped, not a panic.
        write_torn(&path, b"ab", 100).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"ab");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantine_renames_next_to_original() {
        let path = tmp_path("e2gcl_durable_bad.bin");
        std::fs::write(&path, b"garbage").unwrap();
        let q = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(q, tmp_path("e2gcl_durable_bad.bin.corrupt"));
        assert_eq!(std::fs::read(&q).unwrap(), b"garbage");
        let _ = std::fs::remove_file(&q);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("") is the offset basis; "a" is a published test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
