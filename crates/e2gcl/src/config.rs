//! Shared training hyperparameters.

use serde::{Deserialize, Serialize};

/// Hyperparameters common to every contrastive model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Pre-training epochs `T` (Alg. 1).
    pub epochs: usize,
    /// Anchor batch size (the paper uses 500 for all approaches).
    pub batch_size: usize,
    /// Encoder learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Hidden width of the 2-layer GCN encoder.
    pub hidden_dim: usize,
    /// Output embedding dimension.
    pub embed_dim: usize,
    /// If set, record an embedding checkpoint every this many epochs (used
    /// by the Fig. 3 accuracy-vs-time curves).
    pub checkpoint_every: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 500,
            lr: 1e-2,
            weight_decay: 1e-5,
            hidden_dim: 128,
            embed_dim: 64,
            checkpoint_every: None,
        }
    }
}

impl TrainConfig {
    /// Encoder layer dimensions for input width `d_x`.
    pub fn encoder_dims(&self, d_x: usize) -> Vec<usize> {
        vec![d_x, self.hidden_dim, self.embed_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0);
        assert_eq!(c.batch_size, 500);
        assert_eq!(c.encoder_dims(100), vec![100, 128, 64]);
    }

    #[test]
    fn serde_roundtrip() {
        let c = TrainConfig { epochs: 7, ..Default::default() };
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epochs, 7);
    }
}
