//! Shared training hyperparameters.

use crate::guard::{FaultPlan, GuardConfig};
use e2gcl_linalg::TrainError;
use serde::{Deserialize, Serialize};

/// Durable (crash-safe, resumable) checkpoint settings.
///
/// Distinct from [`TrainConfig::checkpoint_every`], which records in-memory
/// embedding snapshots for accuracy-vs-time curves: a *durable* checkpoint
/// is written to disk atomically and carries enough state (weights,
/// optimiser moments, RNG stream positions, guard state) to continue the
/// run bitwise-identically after a crash.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DurableConfig {
    /// Checkpoint file path (a String so the config stays JSON-portable).
    pub path: String,
    /// Persist a checkpoint every this many applied epochs (>= 1). The
    /// final epoch always checkpoints.
    pub every_epochs: usize,
    /// Restore from `path` before training. The file must exist and its
    /// config fingerprint must match this run's.
    #[serde(default)]
    pub resume: bool,
}

/// Mini-batch subgraph training settings (DESIGN.md §13).
///
/// When set on a [`TrainConfig`], models that support it (E²GCL's batched
/// mode and GRACE) train each epoch on neighbour-sampled
/// [`e2gcl_graph::GraphView`] batches instead of the full adjacency: the
/// node set is shuffled into seed batches of `batch_nodes`, each batch is
/// expanded `L` hops with at most `fanout` neighbours per node, and the
/// loss is computed batch-locally over the seed rows only.
///
/// The degenerate configuration — `batch_nodes >= |V|` with unlimited
/// `fanout` — is dispatched to the existing full-graph step before any
/// additional randomness is drawn, so it reproduces full-graph training
/// **bitwise** (`tests/minibatch_equivalence.rs`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinibatchConfig {
    /// Seed nodes per batch (>= 2; InfoNCE needs at least two anchors).
    pub batch_nodes: usize,
    /// Neighbours kept per node per expansion hop (>= 1 when set);
    /// `None` keeps the whole neighbourhood.
    #[serde(default)]
    pub fanout: Option<usize>,
}

impl MinibatchConfig {
    /// True when this configuration covers the whole graph in one batch
    /// with no neighbour subsampling — equivalent to full-graph training.
    pub fn is_full_batch(&self, num_nodes: usize) -> bool {
        self.batch_nodes >= num_nodes && self.fanout.is_none()
    }
}

/// Contrastive-loss strategy (DESIGN.md §15).
///
/// Selects which InfoNCE kernel the InfoNCE-based training paths (GRACE/GCA
/// and E²GCL's batched modes) run:
///
/// * [`Full`](LossStrategy::Full) — the existing fused O(n²) kernel,
///   bitwise-unchanged (golden fingerprints stay valid);
/// * [`SmallNeg`](LossStrategy::SmallNeg) — anchors contrast against
///   `negatives` representative rows picked deterministically per epoch by
///   the Alg. 2 greedy selector over the current embeddings: O(n·k);
/// * [`Localized`](LossStrategy::Localized) — negatives restricted to each
///   anchor's CSR `hops`-hop neighbourhood, with no projection head:
///   O(nnz·d).
///
/// Models whose objective is not InfoNCE-shaped reject non-`Full`
/// strategies with a typed [`TrainError::InvalidConfig`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossStrategy {
    /// Full symmetric InfoNCE over all n rows (the default).
    #[default]
    Full,
    /// Contrast against a small representative negative set.
    SmallNeg {
        /// Negative-set size `k` (>= 1).
        negatives: usize,
    },
    /// Contrast against the L-hop graph neighbourhood only.
    Localized {
        /// Neighbourhood radius `L` (>= 1).
        hops: usize,
    },
}

impl LossStrategy {
    /// True for the default full-loss strategy.
    pub fn is_full(&self) -> bool {
        matches!(self, LossStrategy::Full)
    }

    /// Stable strategy name (`full` / `smallneg` / `localized`), matching
    /// the CLI `--loss` flag values and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            LossStrategy::Full => "full",
            LossStrategy::SmallNeg { .. } => "smallneg",
            LossStrategy::Localized { .. } => "localized",
        }
    }
}

/// Hyperparameters common to every contrastive model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Pre-training epochs `T` (Alg. 1).
    pub epochs: usize,
    /// Anchor batch size (the paper uses 500 for all approaches).
    pub batch_size: usize,
    /// Encoder learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Hidden width of the 2-layer GCN encoder.
    pub hidden_dim: usize,
    /// Output embedding dimension.
    pub embed_dim: usize,
    /// If set, record an embedding checkpoint every this many epochs (used
    /// by the Fig. 3 accuracy-vs-time curves).
    pub checkpoint_every: Option<usize>,
    /// Numeric-guard policy applied each training epoch.
    #[serde(default)]
    pub guard: GuardConfig,
    /// Deterministic fault injection (tests only; `None` in production).
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Durable resumable checkpoints (`None` = no disk writes).
    #[serde(default)]
    pub durable: Option<DurableConfig>,
    /// Mini-batch subgraph training (`None` = full-graph epochs).
    #[serde(default)]
    pub minibatch: Option<MinibatchConfig>,
    /// Contrastive-loss strategy (`Full` = the original O(n²) kernel).
    #[serde(default)]
    pub loss: LossStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 500,
            lr: 1e-2,
            weight_decay: 1e-5,
            hidden_dim: 128,
            embed_dim: 64,
            checkpoint_every: None,
            guard: GuardConfig::default(),
            fault: None,
            durable: None,
            minibatch: None,
            loss: LossStrategy::Full,
        }
    }
}

impl TrainConfig {
    /// Encoder layer dimensions for input width `d_x`.
    pub fn encoder_dims(&self, d_x: usize) -> Vec<usize> {
        vec![d_x, self.hidden_dim, self.embed_dim]
    }

    /// Checks the configuration before a run touches any data. Called at
    /// every pipeline entry point; direct `pretrain` calls may still use
    /// degenerate configs (e.g. `epochs: 0` for an untrained baseline).
    pub fn validate(&self) -> Result<(), TrainError> {
        let fail = |msg: String| Err(TrainError::InvalidConfig(msg));
        if self.epochs < 1 {
            return fail(format!("epochs must be >= 1, got {}", self.epochs));
        }
        if self.batch_size < 1 {
            return fail(format!("batch_size must be >= 1, got {}", self.batch_size));
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return fail(format!("lr must be finite and > 0, got {}", self.lr));
        }
        if !self.weight_decay.is_finite() || self.weight_decay < 0.0 {
            return fail(format!(
                "weight_decay must be finite and >= 0, got {}",
                self.weight_decay
            ));
        }
        if self.hidden_dim < 1 || self.embed_dim < 1 {
            return fail(format!(
                "hidden_dim/embed_dim must be >= 1, got {}/{}",
                self.hidden_dim, self.embed_dim
            ));
        }
        if self.checkpoint_every == Some(0) {
            return fail("checkpoint_every must be >= 1 when set".to_string());
        }
        if !self.guard.divergence_factor.is_finite() || self.guard.divergence_factor <= 1.0 {
            return fail(format!(
                "guard.divergence_factor must be finite and > 1, got {}",
                self.guard.divergence_factor
            ));
        }
        if let Some(max_norm) = self.guard.max_grad_norm {
            if !max_norm.is_finite() || max_norm <= 0.0 {
                return fail(format!(
                    "guard.max_grad_norm must be finite and > 0, got {max_norm}"
                ));
            }
        }
        if let Some(d) = &self.durable {
            if d.path.is_empty() {
                return fail("durable.path must not be empty".to_string());
            }
            if d.every_epochs < 1 {
                return fail(format!(
                    "durable.every_epochs must be >= 1, got {}",
                    d.every_epochs
                ));
            }
        }
        if let Some(mb) = &self.minibatch {
            if mb.batch_nodes < 2 {
                return fail(format!(
                    "minibatch.batch_nodes must be >= 2, got {}",
                    mb.batch_nodes
                ));
            }
            if mb.fanout == Some(0) {
                return fail("minibatch.fanout must be >= 1 when set".to_string());
            }
        }
        match self.loss {
            LossStrategy::SmallNeg { negatives: 0 } => {
                return fail("loss.SmallNeg.negatives must be >= 1".to_string());
            }
            LossStrategy::Localized { hops: 0 } => {
                return fail("loss.Localized.hops must be >= 1".to_string());
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardPolicy;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0);
        assert_eq!(c.batch_size, 500);
        assert_eq!(c.encoder_dims(100), vec![100, 128, 64]);
        assert!(c.fault.is_none());
        assert!(c.guard.max_grad_norm.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let c = TrainConfig {
            epochs: 7,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epochs, 7);
    }

    #[test]
    fn deserializes_configs_written_before_guard_fields_existed() {
        let json = r#"{"epochs":5,"batch_size":100,"lr":0.01,"weight_decay":0.00001,
                       "hidden_dim":32,"embed_dim":16,"checkpoint_every":null}"#;
        let c: TrainConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.guard, GuardConfig::default());
        assert!(c.fault.is_none());
        assert!(c.durable.is_none());
        assert!(c.minibatch.is_none());
        assert!(c.loss.is_full());
    }

    #[test]
    fn loss_strategy_roundtrips_and_names() {
        for (loss, name) in [
            (LossStrategy::Full, "full"),
            (LossStrategy::SmallNeg { negatives: 256 }, "smallneg"),
            (LossStrategy::Localized { hops: 2 }, "localized"),
        ] {
            assert_eq!(loss.name(), name);
            let c = TrainConfig {
                loss: loss.clone(),
                ..TrainConfig::default()
            };
            assert!(c.validate().is_ok());
            let back: TrainConfig =
                serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
            assert_eq!(back.loss, loss);
        }
    }

    #[test]
    fn validate_rejects_degenerate_loss_strategies() {
        for bad in [
            LossStrategy::SmallNeg { negatives: 0 },
            LossStrategy::Localized { hops: 0 },
        ] {
            let c = TrainConfig {
                loss: bad,
                ..TrainConfig::default()
            };
            let err = c.validate().unwrap_err();
            assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn minibatch_block_roundtrips_and_defaults_fanout() {
        let json = r#"{"epochs":5,"batch_size":100,"lr":0.01,"weight_decay":0.00001,
                       "hidden_dim":32,"embed_dim":16,"checkpoint_every":null,
                       "minibatch":{"batch_nodes":256}}"#;
        let c: TrainConfig = serde_json::from_str(json).unwrap();
        let mb = c.minibatch.clone().unwrap();
        assert_eq!(mb.batch_nodes, 256);
        assert_eq!(mb.fanout, None);
        assert!(c.validate().is_ok());
        let back: TrainConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back.minibatch, c.minibatch);
    }

    #[test]
    fn minibatch_full_batch_detection() {
        let unbounded = MinibatchConfig {
            batch_nodes: 100,
            fanout: None,
        };
        assert!(unbounded.is_full_batch(100));
        assert!(unbounded.is_full_batch(64));
        assert!(!unbounded.is_full_batch(101));
        let bounded = MinibatchConfig {
            batch_nodes: 100,
            fanout: Some(5),
        };
        assert!(!bounded.is_full_batch(64), "fanout caps the expansion");
    }

    #[test]
    fn validate_checks_durable_settings() {
        let durable = |path: &str, every| {
            Some(DurableConfig {
                path: path.into(),
                every_epochs: every,
                resume: false,
            })
        };
        let mut c = TrainConfig {
            durable: durable("/tmp/ckpt.bin", 2),
            ..TrainConfig::default()
        };
        assert!(c.validate().is_ok());
        c.durable = durable("", 2);
        assert!(c.validate().is_err());
        c.durable = durable("/tmp/ckpt.bin", 0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_values() {
        let base = TrainConfig::default();
        for bad in [
            TrainConfig {
                epochs: 0,
                ..base.clone()
            },
            TrainConfig {
                batch_size: 0,
                ..base.clone()
            },
            TrainConfig {
                lr: 0.0,
                ..base.clone()
            },
            TrainConfig {
                lr: f32::NAN,
                ..base.clone()
            },
            TrainConfig {
                weight_decay: -1.0,
                ..base.clone()
            },
            TrainConfig {
                hidden_dim: 0,
                ..base.clone()
            },
            TrainConfig {
                embed_dim: 0,
                ..base.clone()
            },
            TrainConfig {
                checkpoint_every: Some(0),
                ..base.clone()
            },
            TrainConfig {
                minibatch: Some(MinibatchConfig {
                    batch_nodes: 1,
                    fanout: None,
                }),
                ..base.clone()
            },
            TrainConfig {
                minibatch: Some(MinibatchConfig {
                    batch_nodes: 64,
                    fanout: Some(0),
                }),
                ..base.clone()
            },
        ] {
            let err = bad.validate().unwrap_err();
            assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn validate_rejects_bad_guard_settings() {
        let mut c = TrainConfig::default();
        c.guard.divergence_factor = 1.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::default();
        c.guard.max_grad_norm = Some(0.0);
        assert!(c.validate().is_err());
        let mut c = TrainConfig::default();
        c.guard.max_grad_norm = Some(5.0);
        c.guard.policy = GuardPolicy::SkipEpoch;
        assert!(c.validate().is_ok());
    }
}
