//! Numeric guard and deterministic fault injection for the training loops.
//!
//! Graph contrastive objectives are numerically fragile: one bad batch can
//! NaN the InfoNCE denominator and silently poison every later epoch. The
//! [`NumericGuard`] sits at the end of each training epoch — after the
//! loss and gradients are computed, before the optimiser step — and decides
//! whether to apply the update, discard the epoch, retry it at a reduced
//! learning rate, or abort the run with a [`TrainError`].
//!
//! The guard is zero-cost on healthy runs by construction: it draws no
//! randomness, mutates nothing on the `Proceed` path, and gradient-norm
//! clipping defaults to off, so a healthy run's floating-point trajectory
//! is bit-identical with or without the guard in place.
//!
//! [`FaultPlan`] is the matching test hook: a deterministic, epoch-keyed
//! description of NaN/Inf corruption that the training loops apply to their
//! own losses/gradients/features, so every guard policy can be exercised
//! end-to-end without relying on a model actually diverging.

use e2gcl_linalg::{Matrix, TrainError};
use serde::{Deserialize, Serialize};

/// What the guard does when an epoch fails its health check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardPolicy {
    /// Abort the run with the detected [`TrainError`].
    FailFast,
    /// Discard the epoch's update and move on to the next epoch.
    SkipEpoch,
    /// Discard the update, halve the learning rate and re-run the epoch;
    /// abort after `max_retries` consecutive failed attempts.
    Backoff { max_retries: usize },
}

/// Per-run numeric-guard configuration, carried on `TrainConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Reaction to an unhealthy epoch.
    pub policy: GuardPolicy,
    /// A finite loss whose magnitude exceeds `divergence_factor *
    /// (|baseline| + 1)` — baseline being the first healthy epoch's loss —
    /// counts as diverged.
    pub divergence_factor: f32,
    /// If set, clip gradients to this global L2 norm before the optimiser
    /// step. `None` (the default) leaves updates bit-identical to the
    /// unguarded loops.
    pub max_grad_norm: Option<f32>,
    /// Also scan the epoch's embeddings for NaN/Inf (catches parameters
    /// poisoned by an earlier step).
    pub check_embeddings: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            policy: GuardPolicy::Backoff { max_retries: 2 },
            divergence_factor: 1e4,
            max_grad_norm: None,
            check_embeddings: true,
        }
    }
}

/// Verdict for one epoch, returned by [`NumericGuard::inspect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GuardAction {
    /// The epoch is healthy: apply the optimiser step and advance.
    Proceed,
    /// Discard this epoch's update and advance.
    SkipEpoch,
    /// Discard the update and re-run the same epoch with the learning rate
    /// scaled by `lr_scale` (cumulative halving across retries).
    RetryEpoch { lr_scale: f32 },
}

/// The mutable half of a [`NumericGuard`], captured into durable training
/// checkpoints so a resumed run continues with the same divergence baseline,
/// backoff budget and learning-rate scale the interrupted run had.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardState {
    /// First healthy epoch's loss (divergence baseline), if seen.
    pub baseline: Option<f32>,
    /// Consecutive failed attempts of the current epoch.
    pub consecutive_failures: usize,
    /// Cumulative learning-rate scale.
    pub lr_scale: f32,
    /// Epochs skipped under [`GuardPolicy::SkipEpoch`].
    pub skipped_epochs: Vec<usize>,
}

/// Per-run numeric health tracker. Create one per `pretrain` call.
#[derive(Clone, Debug)]
pub struct NumericGuard {
    cfg: GuardConfig,
    baseline: Option<f32>,
    consecutive_failures: usize,
    /// Cumulative learning-rate scale; stays at 1.0 on healthy runs and is
    /// halved on every backoff retry (the reduction is permanent for the
    /// remainder of the run).
    pub lr_scale: f32,
    /// Epochs whose updates were discarded under [`GuardPolicy::SkipEpoch`].
    pub skipped_epochs: Vec<usize>,
}

impl NumericGuard {
    /// A fresh guard for one training run.
    pub fn new(cfg: &GuardConfig) -> Self {
        Self {
            cfg: *cfg,
            baseline: None,
            consecutive_failures: 0,
            lr_scale: 1.0,
            skipped_epochs: Vec::new(),
        }
    }

    /// Classifies one epoch. `grads_bad` / `embeddings_bad` are the caller's
    /// NaN/Inf scan results (pass `false` where a model has no gradient
    /// matrices, e.g. the random-walk models).
    ///
    /// Returns `Ok(action)` per the configured policy, or `Err` when the
    /// policy is fail-fast or a backoff budget is exhausted.
    pub fn inspect(
        &mut self,
        epoch: usize,
        loss: f32,
        grads_bad: bool,
        embeddings_bad: bool,
    ) -> Result<GuardAction, TrainError> {
        let problem = self.diagnose(epoch, loss, grads_bad, embeddings_bad);
        let Some(err) = problem else {
            self.consecutive_failures = 0;
            if self.baseline.is_none() {
                self.baseline = Some(loss);
            }
            return Ok(GuardAction::Proceed);
        };
        match self.cfg.policy {
            GuardPolicy::FailFast => Err(err),
            GuardPolicy::SkipEpoch => {
                self.skipped_epochs.push(epoch);
                Ok(GuardAction::SkipEpoch)
            }
            GuardPolicy::Backoff { max_retries } => {
                if self.consecutive_failures < max_retries {
                    self.consecutive_failures += 1;
                    self.lr_scale *= 0.5;
                    Ok(GuardAction::RetryEpoch {
                        lr_scale: self.lr_scale,
                    })
                } else {
                    Err(err)
                }
            }
        }
    }

    fn diagnose(
        &self,
        epoch: usize,
        loss: f32,
        grads_bad: bool,
        embeddings_bad: bool,
    ) -> Option<TrainError> {
        if !loss.is_finite() {
            return Some(TrainError::NonFiniteLoss { epoch });
        }
        if grads_bad {
            return Some(TrainError::NonFiniteGradient { epoch });
        }
        if self.cfg.check_embeddings && embeddings_bad {
            return Some(TrainError::NonFiniteEmbedding { epoch });
        }
        if let Some(baseline) = self.baseline {
            if loss.abs() > self.cfg.divergence_factor * (baseline.abs() + 1.0) {
                return Some(TrainError::DivergedLoss {
                    epoch,
                    loss,
                    baseline,
                });
            }
        }
        None
    }

    /// Scan helper mirroring `Matrix::has_non_finite` over optional pairs of
    /// view embeddings, honouring `check_embeddings`.
    pub fn embeddings_bad(&self, embeddings: &[&Matrix]) -> bool {
        self.cfg.check_embeddings && embeddings.iter().any(|m| m.has_non_finite())
    }

    /// Captures the guard's mutable state for a durable checkpoint.
    pub fn state(&self) -> GuardState {
        GuardState {
            baseline: self.baseline,
            consecutive_failures: self.consecutive_failures,
            lr_scale: self.lr_scale,
            skipped_epochs: self.skipped_epochs.clone(),
        }
    }

    /// Restores state captured by [`NumericGuard::state`]. The policy
    /// configuration is not part of the state — it comes from the (hash-
    /// verified) `TrainConfig` of the resumed run.
    pub fn restore_state(&mut self, state: &GuardState) {
        self.baseline = state.baseline;
        self.consecutive_failures = state.consecutive_failures;
        self.lr_scale = state.lr_scale;
        self.skipped_epochs = state.skipped_epochs.clone();
    }
}

/// Deterministic, epoch-keyed fault injection.
///
/// Each list names the epochs at which a corruption is applied. The plan is
/// carried on `TrainConfig::fault` (default `None` — the hooks compile to
/// nothing on healthy configurations) and applied by the training loops
/// themselves, so an injected NaN travels the exact path a real one would.
/// Injection is keyed purely on the epoch counter, so a backoff retry of an
/// injected epoch hits the same fault again — which is exactly what lets
/// tests prove the bounded-retry budget is enforced.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Epochs whose loss is replaced with NaN.
    #[serde(default)]
    pub nan_loss_at: Vec<usize>,
    /// Epochs whose gradient matrices get a NaN entry.
    #[serde(default)]
    pub nan_gradients_at: Vec<usize>,
    /// Epochs whose gradient matrices get an infinite entry.
    #[serde(default)]
    pub inf_gradients_at: Vec<usize>,
    /// Epochs whose (view) feature matrix gets a NaN entry.
    #[serde(default)]
    pub nan_features_at: Vec<usize>,
    /// Restricts the plan to the run whose *original* seed matches. `None`
    /// applies the plan to every run. Scoping is on the original seed on
    /// purpose: the retry of a scoped run (which trains under a derived
    /// seed) still sees the fault, so a scoped persistent fault exhausts the
    /// retry and lands in `failed_runs`.
    #[serde(default)]
    pub only_seed: Option<u64>,
}

impl FaultPlan {
    /// Plan that NaNs the loss at the given epochs.
    pub fn nan_loss(epochs: &[usize]) -> Self {
        Self {
            nan_loss_at: epochs.to_vec(),
            ..Self::default()
        }
    }

    /// Plan that NaNs the gradients at the given epochs.
    pub fn nan_gradients(epochs: &[usize]) -> Self {
        Self {
            nan_gradients_at: epochs.to_vec(),
            ..Self::default()
        }
    }

    /// Plan that injects infinities into the gradients at the given epochs.
    pub fn inf_gradients(epochs: &[usize]) -> Self {
        Self {
            inf_gradients_at: epochs.to_vec(),
            ..Self::default()
        }
    }

    /// Plan that NaNs the features at the given epochs.
    pub fn nan_features(epochs: &[usize]) -> Self {
        Self {
            nan_features_at: epochs.to_vec(),
            ..Self::default()
        }
    }

    /// Scopes the plan to the run with the given original seed.
    pub fn only_for_seed(mut self, seed: u64) -> Self {
        self.only_seed = Some(seed);
        self
    }

    /// True if the plan is scoped to a seed other than `seed` — i.e. this
    /// run should train fault-free. Checked by the pipeline run loops.
    pub fn skips_seed(&self, seed: u64) -> bool {
        self.only_seed.is_some_and(|s| s != seed)
    }

    /// True if no corruption is scheduled at any epoch.
    pub fn is_empty(&self) -> bool {
        self.nan_loss_at.is_empty()
            && self.nan_gradients_at.is_empty()
            && self.inf_gradients_at.is_empty()
            && self.nan_features_at.is_empty()
    }

    /// Loss as seen through the plan at `epoch`.
    pub fn corrupt_loss(&self, epoch: usize, loss: f32) -> f32 {
        if self.nan_loss_at.contains(&epoch) {
            f32::NAN
        } else {
            loss
        }
    }

    /// Applies any scheduled gradient corruption for `epoch` in place.
    pub fn corrupt_gradients(&self, epoch: usize, grads: &mut [Matrix]) {
        let value = if self.nan_gradients_at.contains(&epoch) {
            f32::NAN
        } else if self.inf_gradients_at.contains(&epoch) {
            f32::INFINITY
        } else {
            return;
        };
        if let Some(g) = grads.first_mut() {
            if let Some(v) = g.as_mut_slice().first_mut() {
                *v = value;
            }
        }
    }

    /// Applies any scheduled feature corruption for `epoch` in place.
    pub fn corrupt_features(&self, epoch: usize, x: &mut Matrix) {
        if self.nan_features_at.contains(&epoch) {
            if let Some(v) = x.as_mut_slice().first_mut() {
                *v = f32::NAN;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: GuardPolicy) -> GuardConfig {
        GuardConfig {
            policy,
            ..GuardConfig::default()
        }
    }

    #[test]
    fn healthy_epochs_always_proceed() {
        let mut g = NumericGuard::new(&GuardConfig::default());
        for epoch in 0..5 {
            let a = g
                .inspect(epoch, 1.0 - epoch as f32 * 0.1, false, false)
                .unwrap();
            assert_eq!(a, GuardAction::Proceed);
        }
        assert_eq!(g.lr_scale, 1.0);
        assert!(g.skipped_epochs.is_empty());
    }

    #[test]
    fn fail_fast_surfaces_the_error() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::FailFast));
        let err = g.inspect(3, f32::NAN, false, false).unwrap_err();
        assert_eq!(err, TrainError::NonFiniteLoss { epoch: 3 });
    }

    #[test]
    fn skip_epoch_records_and_advances() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::SkipEpoch));
        assert_eq!(
            g.inspect(0, 1.0, false, false).unwrap(),
            GuardAction::Proceed
        );
        assert_eq!(
            g.inspect(1, 2.0, true, false).unwrap(),
            GuardAction::SkipEpoch
        );
        assert_eq!(
            g.inspect(2, 0.9, false, false).unwrap(),
            GuardAction::Proceed
        );
        assert_eq!(g.skipped_epochs, vec![1]);
    }

    #[test]
    fn backoff_halves_lr_then_gives_up() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::Backoff { max_retries: 2 }));
        assert_eq!(
            g.inspect(0, f32::INFINITY, false, false).unwrap(),
            GuardAction::RetryEpoch { lr_scale: 0.5 }
        );
        assert_eq!(
            g.inspect(0, f32::INFINITY, false, false).unwrap(),
            GuardAction::RetryEpoch { lr_scale: 0.25 }
        );
        let err = g.inspect(0, f32::INFINITY, false, false).unwrap_err();
        assert_eq!(err, TrainError::NonFiniteLoss { epoch: 0 });
    }

    #[test]
    fn backoff_recovers_and_resets_the_budget() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::Backoff { max_retries: 1 }));
        assert!(matches!(
            g.inspect(0, f32::NAN, false, false).unwrap(),
            GuardAction::RetryEpoch { .. }
        ));
        // Retry succeeds: budget resets, lr reduction persists.
        assert_eq!(
            g.inspect(0, 1.0, false, false).unwrap(),
            GuardAction::Proceed
        );
        assert_eq!(g.lr_scale, 0.5);
        assert!(matches!(
            g.inspect(5, f32::NAN, false, false).unwrap(),
            GuardAction::RetryEpoch { .. }
        ));
    }

    #[test]
    fn divergence_is_measured_against_first_healthy_loss() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::FailFast));
        g.inspect(0, 2.0, false, false).unwrap();
        // Large but under the threshold: fine.
        g.inspect(1, 100.0, false, false).unwrap();
        let err = g.inspect(2, 1e9, false, false).unwrap_err();
        assert!(matches!(err, TrainError::DivergedLoss { epoch: 2, .. }));
    }

    #[test]
    fn gradient_and_embedding_problems_are_distinguished() {
        let mut g = NumericGuard::new(&cfg(GuardPolicy::FailFast));
        let err = g.inspect(1, 1.0, true, false).unwrap_err();
        assert_eq!(err, TrainError::NonFiniteGradient { epoch: 1 });
        let mut g = NumericGuard::new(&cfg(GuardPolicy::FailFast));
        let err = g.inspect(2, 1.0, false, true).unwrap_err();
        assert_eq!(err, TrainError::NonFiniteEmbedding { epoch: 2 });
    }

    #[test]
    fn embedding_check_can_be_disabled() {
        let mut c = cfg(GuardPolicy::FailFast);
        c.check_embeddings = false;
        let mut g = NumericGuard::new(&c);
        assert_eq!(
            g.inspect(0, 1.0, false, true).unwrap(),
            GuardAction::Proceed
        );
        let bad = Matrix::filled(1, 1, f32::NAN);
        assert!(!g.embeddings_bad(&[&bad]));
    }

    #[test]
    fn fault_plan_corrupts_only_scheduled_epochs() {
        let plan = FaultPlan::nan_gradients(&[2]);
        let mut grads = vec![Matrix::filled(2, 2, 1.0)];
        plan.corrupt_gradients(1, &mut grads);
        assert!(!grads[0].has_non_finite());
        plan.corrupt_gradients(2, &mut grads);
        assert!(grads[0].has_non_finite());

        let plan = FaultPlan::nan_loss(&[0]);
        assert!(plan.corrupt_loss(0, 1.0).is_nan());
        assert_eq!(plan.corrupt_loss(1, 1.0), 1.0);

        let plan = FaultPlan::inf_gradients(&[1]);
        let mut grads = vec![Matrix::filled(1, 1, 0.0)];
        plan.corrupt_gradients(1, &mut grads);
        assert_eq!(grads[0].get(0, 0), f32::INFINITY);

        let plan = FaultPlan::nan_features(&[3]);
        let mut x = Matrix::filled(2, 2, 0.5);
        plan.corrupt_features(2, &mut x);
        assert!(!x.has_non_finite());
        plan.corrupt_features(3, &mut x);
        assert!(x.has_non_finite());
    }

    #[test]
    fn fault_plan_default_is_empty_and_serde_roundtrips() {
        assert!(FaultPlan::default().is_empty());
        let plan = FaultPlan::nan_gradients(&[1, 4]);
        assert!(!plan.is_empty());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
