//! The paper's evaluation protocol (§V-A2, §V-E).
//!
//! Contrastive models are evaluated by freezing the encoder and training an
//! `l2`-regularised linear decoder on 10% of the labels (node
//! classification), 70% of the edges (link prediction), or 70% of the
//! graphs (graph classification). The supervised references (GCN, MLP) are
//! trained end-to-end on the same splits.

use crate::config::TrainConfig;
use e2gcl_datasets::split::{sample_non_edges, EdgeSplit, NodeSplit};
use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{stats, Matrix, SeedRng};
use e2gcl_nn::loss;
use e2gcl_nn::optim::Optimizer;
use e2gcl_nn::probe::{LinearProbe, LinkDecoder, ProbeConfig};
use e2gcl_nn::{Adam, GcnEncoder, Linear};

/// Accuracy of a frozen-embedding linear probe on one random 10/10/80 split.
pub fn node_classification_accuracy(
    embeddings: &Matrix,
    labels: &[usize],
    num_classes: usize,
    seed: u64,
) -> f32 {
    let mut rng = SeedRng::new(seed ^ 0xe7a1);
    let split = NodeSplit::paper(embeddings.rows(), &mut rng);
    let probe = LinearProbe::fit(
        embeddings,
        labels,
        &split.train,
        num_classes,
        &ProbeConfig::default(),
        &mut rng,
    );
    probe.accuracy(embeddings, labels, &split.test)
}

/// Confusion-matrix evaluation on one split: returns `(accuracy, macro-F1)`
/// plus the matrix itself for error analysis.
pub fn node_classification_report(
    embeddings: &Matrix,
    labels: &[usize],
    num_classes: usize,
    seed: u64,
) -> (f32, f32, crate::metrics::ConfusionMatrix) {
    let mut rng = SeedRng::new(seed ^ 0xe7a1);
    let split = NodeSplit::paper(embeddings.rows(), &mut rng);
    let probe = LinearProbe::fit(
        embeddings,
        labels,
        &split.train,
        num_classes,
        &ProbeConfig::default(),
        &mut rng,
    );
    let preds = probe.predict(embeddings);
    let truth: Vec<usize> = split.test.iter().map(|&v| labels[v]).collect();
    let test_preds: Vec<usize> = split.test.iter().map(|&v| preds[v]).collect();
    let cm = crate::metrics::ConfusionMatrix::from_predictions(&truth, &test_preds, num_classes);
    (cm.accuracy(), cm.macro_f1(), cm)
}

/// Mean ± std accuracy over `runs` random splits (the paper reports 10).
pub fn node_classification(
    embeddings: &Matrix,
    labels: &[usize],
    num_classes: usize,
    runs: usize,
    base_seed: u64,
) -> (f32, f32) {
    let accs: Vec<f32> = (0..runs)
        .map(|r| {
            node_classification_accuracy(embeddings, labels, num_classes, base_seed + r as u64)
        })
        .collect();
    stats::mean_std(&accs)
}

/// End-to-end supervised GCN (the paper's "GCN" row): encoder + linear head
/// trained jointly with cross-entropy on the training nodes.
pub fn supervised_gcn_accuracy(
    g: &CsrGraph,
    x: &Matrix,
    labels: &[usize],
    num_classes: usize,
    cfg: &TrainConfig,
    seed: u64,
) -> f32 {
    let mut rng = SeedRng::new(seed ^ 0x6c9);
    let split = NodeSplit::paper(g.num_nodes(), &mut rng);
    let adj = norm::normalized_adjacency(g);
    let mut encoder = GcnEncoder::new(&cfg.encoder_dims(x.cols()), &mut rng.fork("enc"));
    let mut head = Linear::new(cfg.embed_dim, num_classes, &mut rng.fork("head"));
    let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
    let y_train: Vec<usize> = split.train.iter().map(|&v| labels[v]).collect();
    for _ in 0..cfg.epochs.max(50) {
        let (h, cache) = encoder.forward(&adj, x);
        let h_train = h.select_rows(&split.train);
        let (logits, hc) = head.forward(&h_train);
        let (_, dlogits) = loss::softmax_cross_entropy(&logits, &y_train);
        let hg = head.backward(&hc, &dlogits);
        // Scatter the head's input gradient back to the full node set.
        let mut dh = Matrix::zeros(h.rows(), h.cols());
        for (i, &v) in split.train.iter().enumerate() {
            dh.row_mut(v).copy_from_slice(hg.dx.row(i));
        }
        let grads = encoder.backward(&adj, &cache, &dh);
        opt.step(encoder.params_mut(), &grads);
        head.step(&hg, cfg.lr, cfg.weight_decay);
    }
    let h = encoder.embed(&adj, x);
    let logits = head.apply(&h);
    let correct = split
        .test
        .iter()
        .filter(|&&v| e2gcl_linalg::ops::argmax(logits.row(v)).unwrap_or(0) == labels[v])
        .count();
    correct as f32 / split.test.len().max(1) as f32
}

/// Supervised MLP on raw features (the paper's "MLP" row) — structure-blind.
pub fn supervised_mlp_accuracy(
    x: &Matrix,
    labels: &[usize],
    num_classes: usize,
    cfg: &TrainConfig,
    seed: u64,
) -> f32 {
    let mut rng = SeedRng::new(seed ^ 0x311f);
    let split = NodeSplit::paper(x.rows(), &mut rng);
    let mut l1 = Linear::new(x.cols(), cfg.hidden_dim, &mut rng.fork("l1"));
    let mut l2 = Linear::new(cfg.hidden_dim, num_classes, &mut rng.fork("l2"));
    let x_train = x.select_rows(&split.train);
    let y_train: Vec<usize> = split.train.iter().map(|&v| labels[v]).collect();
    for _ in 0..cfg.epochs.max(100) {
        let (z1, c1) = l1.forward(&x_train);
        let mut a1 = z1.clone();
        e2gcl_linalg::activations::relu_inplace(&mut a1);
        let (logits, c2) = l2.forward(&a1);
        let (_, dlogits) = loss::softmax_cross_entropy(&logits, &y_train);
        let g2 = l2.backward(&c2, &dlogits);
        let mut da1 = g2.dx.clone();
        da1.mul_assign_elem(&e2gcl_linalg::activations::relu_grad_mask(&z1));
        let g1 = l1.backward(&c1, &da1);
        l1.step(&g1, cfg.lr * 10.0, cfg.weight_decay);
        l2.step(&g2, cfg.lr * 10.0, cfg.weight_decay);
    }
    let infer = |xs: &Matrix| -> Matrix {
        let mut a = l1.apply(xs);
        e2gcl_linalg::activations::relu_inplace(&mut a);
        l2.apply(&a)
    };
    let logits = infer(x);
    let correct = split
        .test
        .iter()
        .filter(|&&v| e2gcl_linalg::ops::argmax(logits.row(v)).unwrap_or(0) == labels[v])
        .count();
    correct as f32 / split.test.len().max(1) as f32
}

/// Link-prediction accuracy (§V-E1): fit the logistic pair decoder on
/// training edges + sampled negatives; report test accuracy.
pub fn link_prediction_accuracy(embeddings: &Matrix, split: &EdgeSplit, seed: u64) -> f32 {
    let mut rng = SeedRng::new(seed ^ 0x11e4);
    let train_neg = sample_non_edges(&split.train_graph, split.train_pos.len(), &mut rng);
    let dec = LinkDecoder::fit(
        embeddings,
        &split.train_pos,
        &train_neg,
        &ProbeConfig::default(),
        &mut rng,
    );
    dec.accuracy(embeddings, &split.test_pos, &split.test_neg)
}

/// SUM-readout graph embedding (§V-E2): `z_i = Σ_{v ∈ V_i} H_i[v]`.
pub fn sum_readout(node_embeddings: &Matrix) -> Vec<f32> {
    let d = node_embeddings.cols();
    let mut z = vec![0.0f32; d];
    for r in 0..node_embeddings.rows() {
        for (acc, &v) in z.iter_mut().zip(node_embeddings.row(r)) {
            *acc += v;
        }
    }
    z
}

/// Graph-classification accuracy from per-graph embeddings: linear probe on
/// a 70/10/20 split.
pub fn graph_classification_accuracy(
    graph_embeddings: &Matrix,
    labels: &[usize],
    num_classes: usize,
    seed: u64,
) -> f32 {
    let mut rng = SeedRng::new(seed ^ 0x9c1a);
    let split = NodeSplit::random(graph_embeddings.rows(), 0.7, 0.1, &mut rng);
    let probe = LinearProbe::fit(
        graph_embeddings,
        labels,
        &split.train,
        num_classes,
        &ProbeConfig::default(),
        &mut rng,
    );
    probe.accuracy(graph_embeddings, labels, &split.test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_datasets::{spec, NodeDataset};

    #[test]
    fn probe_protocol_beats_chance_on_raw_aggregates() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.15, 0);
        // Even untrained raw aggregates carry class signal on a homophilous
        // graph, so the probe must clear the 1/7 chance level easily.
        let r = norm::raw_aggregate(&d.graph, &d.features, 2);
        let (mean, std) = node_classification(&r, &d.labels, d.num_classes, 3, 0);
        assert!(mean > 0.4, "mean {mean} ± {std}");
        assert!(std >= 0.0);
    }

    #[test]
    fn supervised_gcn_learns() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.1, 1);
        let cfg = TrainConfig {
            epochs: 60,
            ..Default::default()
        };
        let acc = supervised_gcn_accuracy(&d.graph, &d.features, &d.labels, d.num_classes, &cfg, 0);
        assert!(acc > 0.5, "GCN accuracy {acc}");
    }

    #[test]
    fn supervised_mlp_learns_but_less_than_gcn_style_signal() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.1, 2);
        let cfg = TrainConfig {
            epochs: 100,
            ..Default::default()
        };
        let acc = supervised_mlp_accuracy(&d.features, &d.labels, d.num_classes, &cfg, 0);
        // Well above 7-class chance (~0.14); features alone carry signal
        // but markedly less than the graph-aware GCN (> 0.5 above).
        assert!(acc > 0.25, "MLP accuracy {acc}");
    }

    #[test]
    fn link_prediction_on_structured_embeddings() {
        let d = NodeDataset::generate(&spec("cora-sim").unwrap(), 0.1, 3);
        let mut rng = SeedRng::new(4);
        let split = EdgeSplit::random(&d.graph, &mut rng);
        // Raw aggregates of the training graph as embeddings.
        let h = norm::raw_aggregate(&split.train_graph, &d.features, 2);
        let acc = link_prediction_accuracy(&h, &split, 0);
        assert!(acc > 0.55, "link accuracy {acc}");
    }

    #[test]
    fn sum_readout_adds_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_readout(&m), vec![4.0, 6.0]);
    }
}
