//! Durable, resumable training checkpoints.
//!
//! A [`TrainCheckpoint`] is everything the [`crate::engine::EpochDriver`]
//! needs to continue an interrupted run **bitwise identically**: the next
//! epoch to execute, the guard's numeric state, the recorded loss curve and
//! embedding snapshots, and the model step's mutable cross-epoch state
//! ([`StepState`]: parameter/optimiser matrices plus exact RNG stream
//! positions). Everything *immutable* over epochs — the dataset, the node
//! selection, the view generator, the initial weights — is deliberately
//! not stored: it is reconstructed deterministically by re-running the
//! model's setup under the same master seed, then overwritten from the
//! checkpoint. That keeps checkpoints small (optimiser state + weights,
//! not the whole training context) and makes config drift detectable.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"E2GCLCKP"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     payload length in bytes, u64 LE
//! 20      8     FNV-1a 64-bit checksum of the payload, u64 LE
//! 28      ...   payload
//! ```
//!
//! Payload, in order (integers LE, floats as IEEE-754 bit patterns):
//! `next_epoch` u64 · config fingerprint u64 · guard state · loss curve ·
//! embedding snapshots · step state. Files are written through
//! [`crate::durable::atomic_write`], so a crash never leaves a torn
//! checkpoint at the destination path; a corrupt file found on load is
//! quarantined (renamed `*.corrupt`) with a typed
//! [`TrainError::Checkpoint`].

use crate::config::TrainConfig;
use crate::durable::{atomic_write, fnv1a64, quarantine};
use crate::guard::GuardState;
use e2gcl_linalg::rng::RngState;
use e2gcl_linalg::{Matrix, SeedRng, TrainError};
use e2gcl_nn::Adam;
use std::path::Path;

/// Leading 8 bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"E2GCLCKP";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;
/// Size of the fixed header (magic + version + payload length + checksum).
pub const HEADER_LEN: usize = 28;

/// A model step's mutable cross-epoch state, as generic containers.
///
/// Each model defines its own layout (the order of `matrices`, the meaning
/// of `scalars`) — a checkpoint is only ever restored into the same model
/// under the same config, which the config fingerprint enforces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepState {
    /// Parameter and optimiser-moment matrices.
    pub matrices: Vec<Matrix>,
    /// Exact RNG stream positions (e.g. the training RNG).
    pub rngs: Vec<RngState>,
    /// Scalar state (step counts, layout markers), as f64.
    pub scalars: Vec<f64>,
}

/// The canonical layout of [`StepState`] for an encoder trainer: encoder
/// parameters, optional extra parameter matrices (e.g. a projection head),
/// Adam state and the training RNG — unpacked back into typed pieces.
#[derive(Debug)]
pub struct TrainerState {
    /// Primary (Adam-trained) parameter matrices.
    pub params: Vec<Matrix>,
    /// Extra parameter matrices outside the Adam group.
    pub extra: Vec<Matrix>,
    /// Adam step count.
    pub adam_t: u32,
    /// Adam first moments (empty before the first step).
    pub adam_m: Vec<Matrix>,
    /// Adam second moments (paired with `adam_m`).
    pub adam_v: Vec<Matrix>,
    /// Restored training RNG, positioned exactly where the producing run's
    /// was.
    pub rng: SeedRng,
}

impl StepState {
    /// Packs the canonical encoder-trainer layout (see [`TrainerState`]).
    pub fn pack_trainer(
        params: &[Matrix],
        extra: &[Matrix],
        opt: &Adam,
        rng: &SeedRng,
    ) -> StepState {
        let (t, m, v) = opt.state();
        let mut matrices = Vec::with_capacity(params.len() + extra.len() + m.len() + v.len());
        matrices.extend(params.iter().cloned());
        matrices.extend(extra.iter().cloned());
        matrices.extend(m.iter().cloned());
        matrices.extend(v.iter().cloned());
        StepState {
            matrices,
            rngs: vec![rng.state()],
            scalars: vec![
                f64::from(t),
                params.len() as f64,
                extra.len() as f64,
                m.len() as f64,
            ],
        }
    }

    /// Inverse of [`StepState::pack_trainer`]. `n_params` / `n_extra` are
    /// the counts the restoring model expects; any mismatch (a checkpoint
    /// from a different architecture) is a typed error, not a panic.
    pub fn unpack_trainer(
        &self,
        n_params: usize,
        n_extra: usize,
    ) -> Result<TrainerState, TrainError> {
        let fail = |msg: String| Err(TrainError::Checkpoint(msg));
        if self.scalars.len() != 4 || self.rngs.len() != 1 {
            return fail(format!(
                "trainer state expects 4 scalars and 1 rng, found {} and {}",
                self.scalars.len(),
                self.rngs.len()
            ));
        }
        let t = self.scalars[0] as u32;
        let (sp, se, sm) = (
            self.scalars[1] as usize,
            self.scalars[2] as usize,
            self.scalars[3] as usize,
        );
        if sp != n_params || se != n_extra {
            return fail(format!(
                "trainer state has {sp} params / {se} extra, model expects {n_params} / {n_extra}"
            ));
        }
        if self.matrices.len() != n_params + n_extra + 2 * sm {
            return fail(format!(
                "trainer state has {} matrices, layout requires {}",
                self.matrices.len(),
                n_params + n_extra + 2 * sm
            ));
        }
        if !(sm == 0 || sm == n_params) {
            return fail(format!(
                "adam moments cover {sm} matrices for {n_params} params"
            ));
        }
        let mut it = self.matrices.iter().cloned();
        let params: Vec<Matrix> = it.by_ref().take(n_params).collect();
        let extra: Vec<Matrix> = it.by_ref().take(n_extra).collect();
        let adam_m: Vec<Matrix> = it.by_ref().take(sm).collect();
        let adam_v: Vec<Matrix> = it.collect();
        Ok(TrainerState {
            params,
            extra,
            adam_t: t,
            adam_m,
            adam_v,
            rng: SeedRng::from_state(&self.rngs[0]),
        })
    }
}

/// Copies restored parameter matrices over live ones, shape-checked.
pub fn restore_params(live: &mut [Matrix], saved: &[Matrix]) -> Result<(), TrainError> {
    if live.len() != saved.len() {
        return Err(TrainError::Checkpoint(format!(
            "checkpoint has {} parameter matrices, model has {}",
            saved.len(),
            live.len()
        )));
    }
    for (p, src) in live.iter_mut().zip(saved) {
        if (p.rows(), p.cols()) != (src.rows(), src.cols()) {
            return Err(TrainError::Checkpoint(format!(
                "parameter shape mismatch: checkpoint {}x{}, model {}x{}",
                src.rows(),
                src.cols(),
                p.rows(),
                p.cols()
            )));
        }
        *p = src.clone();
    }
    Ok(())
}

/// One resumable training checkpoint (see module docs for the format).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// The next epoch the driver should execute.
    pub next_epoch: usize,
    /// [`config_fingerprint`] of the producing run's `TrainConfig`.
    pub cfg_hash: u64,
    /// Numeric-guard state at the checkpoint.
    pub guard: GuardState,
    /// Loss curve recorded so far.
    pub loss_curve: Vec<f32>,
    /// `(seconds, embeddings)` snapshots recorded so far.
    pub snapshots: Vec<(f64, Matrix)>,
    /// The model step's mutable state.
    pub step: StepState,
}

/// Fingerprint of the parts of a `TrainConfig` that must match between the
/// producing and resuming run. Two blocks are excluded on purpose: the
/// `durable` block (the resuming run flips `resume`, and may relocate the
/// file, without changing the trajectory) and the `fault` plan (crash-safety
/// tests interrupt a run *with* an injected fault and resume it without
/// one — the already-trained epochs are identical either way).
pub fn config_fingerprint(cfg: &TrainConfig) -> u64 {
    let mut stripped = cfg.clone();
    stripped.durable = None;
    stripped.fault = None;
    let json = serde_json::to_string(&stripped).unwrap_or_default();
    fnv1a64(json.as_bytes())
}

impl TrainCheckpoint {
    /// Serialises to the version-1 byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&(self.next_epoch as u64).to_le_bytes());
        p.extend_from_slice(&self.cfg_hash.to_le_bytes());
        // Guard state.
        p.push(self.guard.baseline.is_some() as u8);
        p.extend_from_slice(&self.guard.baseline.unwrap_or(0.0).to_bits().to_le_bytes());
        p.extend_from_slice(&(self.guard.consecutive_failures as u64).to_le_bytes());
        p.extend_from_slice(&self.guard.lr_scale.to_bits().to_le_bytes());
        p.extend_from_slice(&(self.guard.skipped_epochs.len() as u32).to_le_bytes());
        for &e in &self.guard.skipped_epochs {
            p.extend_from_slice(&(e as u64).to_le_bytes());
        }
        // Loss curve.
        p.extend_from_slice(&(self.loss_curve.len() as u32).to_le_bytes());
        for &l in &self.loss_curve {
            p.extend_from_slice(&l.to_bits().to_le_bytes());
        }
        // Embedding snapshots.
        p.extend_from_slice(&(self.snapshots.len() as u32).to_le_bytes());
        for (secs, m) in &self.snapshots {
            p.extend_from_slice(&secs.to_bits().to_le_bytes());
            put_matrix(&mut p, m);
        }
        // Step state.
        p.extend_from_slice(&(self.step.matrices.len() as u32).to_le_bytes());
        for m in &self.step.matrices {
            put_matrix(&mut p, m);
        }
        p.extend_from_slice(&(self.step.rngs.len() as u32).to_le_bytes());
        for r in &self.step.rngs {
            p.extend_from_slice(&r.to_bytes());
        }
        p.extend_from_slice(&(self.step.scalars.len() as u32).to_le_bytes());
        for &s in &self.step.scalars {
            p.extend_from_slice(&s.to_bits().to_le_bytes());
        }

        let mut out = Vec::with_capacity(HEADER_LEN + p.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Parses a checkpoint, verifying magic, version, length and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainCheckpoint, TrainError> {
        let fail = |msg: String| Err(TrainError::Checkpoint(msg));
        if bytes.len() < HEADER_LEN {
            return fail(format!(
                "truncated header: {} of {HEADER_LEN} bytes",
                bytes.len()
            ));
        }
        if bytes[..8] != MAGIC {
            return fail(format!("bad magic {:02x?}", &bytes[..8]));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != VERSION {
            return fail(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            ));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[12..20]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[20..28]);
        let expected = u64::from_le_bytes(sum8);
        let body = &bytes[HEADER_LEN..];
        if body.len() != payload_len {
            return fail(format!(
                "payload length mismatch: header says {payload_len}, file has {}",
                body.len()
            ));
        }
        let actual = fnv1a64(body);
        if actual != expected {
            return fail(format!(
                "checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ));
        }

        let mut cur = Reader::new(body);
        let next_epoch = cur.take_u64()? as usize;
        let cfg_hash = cur.take_u64()?;
        let has_baseline = cur.take_u8()? != 0;
        let baseline_bits = cur.take_u32()?;
        let guard = GuardState {
            baseline: has_baseline.then(|| f32::from_bits(baseline_bits)),
            consecutive_failures: cur.take_u64()? as usize,
            lr_scale: f32::from_bits(cur.take_u32()?),
            skipped_epochs: {
                let n = cur.take_u32()? as usize;
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(cur.take_u64()? as usize);
                }
                v
            },
        };
        let n_loss = cur.take_u32()? as usize;
        let mut loss_curve = Vec::with_capacity(n_loss.min(4096));
        for _ in 0..n_loss {
            loss_curve.push(f32::from_bits(cur.take_u32()?));
        }
        let n_snap = cur.take_u32()? as usize;
        let mut snapshots = Vec::with_capacity(n_snap.min(1024));
        for _ in 0..n_snap {
            let secs = f64::from_bits(cur.take_u64()?);
            snapshots.push((secs, cur.take_matrix()?));
        }
        let n_mat = cur.take_u32()? as usize;
        let mut matrices = Vec::with_capacity(n_mat.min(1024));
        for _ in 0..n_mat {
            matrices.push(cur.take_matrix()?);
        }
        let n_rng = cur.take_u32()? as usize;
        let mut rngs = Vec::with_capacity(n_rng.min(64));
        for _ in 0..n_rng {
            let b = cur.take(44)?;
            rngs.push(
                RngState::from_bytes(b)
                    .ok_or_else(|| TrainError::Checkpoint("malformed rng state".into()))?,
            );
        }
        let n_scalar = cur.take_u32()? as usize;
        let mut scalars = Vec::with_capacity(n_scalar.min(4096));
        for _ in 0..n_scalar {
            scalars.push(f64::from_bits(cur.take_u64()?));
        }
        cur.finish()?;
        Ok(TrainCheckpoint {
            next_epoch,
            cfg_hash,
            guard,
            loss_curve,
            snapshots,
            step: StepState {
                matrices,
                rngs,
                scalars,
            },
        })
    }

    /// Writes the checkpoint durably ([`atomic_write`]): the path never
    /// holds a torn file, even across a crash mid-save.
    pub fn save_durable(&self, path: &Path) -> Result<(), TrainError> {
        atomic_write(path, &self.to_bytes())
            .map_err(|e| TrainError::Checkpoint(format!("{}: {e}", path.display())))
    }

    /// Reads and parses a checkpoint. A file that exists but fails to parse
    /// is quarantined (renamed `*.corrupt`) and the returned error names
    /// both the cause and the quarantine location.
    pub fn load_durable(path: &Path) -> Result<TrainCheckpoint, TrainError> {
        let bytes = std::fs::read(path)
            .map_err(|e| TrainError::Checkpoint(format!("{}: {e}", path.display())))?;
        match Self::from_bytes(&bytes) {
            Ok(ckpt) => Ok(ckpt),
            Err(err) => {
                let note = match quarantine(path) {
                    Ok(q) => format!("quarantined to {}", q.display()),
                    Err(e) => format!("quarantine failed: {e}"),
                };
                Err(TrainError::Checkpoint(format!(
                    "{}: {err}; {note}",
                    path.display()
                )))
            }
        }
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Bounds-checked sequential reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TrainError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(TrainError::Checkpoint(format!(
                "truncated payload: field needs {n} bytes, {available} left"
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u8(&mut self) -> Result<u8, TrainError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, TrainError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, TrainError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn take_matrix(&mut self) -> Result<Matrix, TrainError> {
        let rows = self.take_u32()? as usize;
        let cols = self.take_u32()? as usize;
        let count = rows.checked_mul(cols).and_then(|c| c.checked_mul(4));
        let bytes = self.take(count.ok_or_else(|| {
            TrainError::Checkpoint(format!("matrix shape {rows}x{cols} overflows"))
        })?)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn finish(&self) -> Result<(), TrainError> {
        if self.pos != self.buf.len() {
            return Err(TrainError::Checkpoint(format!(
                "{} unread bytes inside payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    fn sample() -> TrainCheckpoint {
        let mut rng = SeedRng::new(5);
        rng.uniform();
        let mut m = Matrix::zeros(3, 2);
        for v in m.as_mut_slice() {
            *v = rng.normal();
        }
        TrainCheckpoint {
            next_epoch: 7,
            cfg_hash: config_fingerprint(&TrainConfig::default()),
            guard: GuardState {
                baseline: Some(1.25),
                consecutive_failures: 1,
                lr_scale: 0.5,
                skipped_epochs: vec![2, 4],
            },
            loss_curve: vec![1.5, 1.2, f32::NAN, 0.9],
            snapshots: vec![(0.25, m.clone())],
            step: StepState {
                matrices: vec![m, Matrix::filled(2, 2, -0.5)],
                rngs: vec![rng.state()],
                scalars: vec![3.0, 2.0],
            },
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let a = sample();
        let bytes = a.to_bytes();
        let b = TrainCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(a.next_epoch, b.next_epoch);
        assert_eq!(a.cfg_hash, b.cfg_hash);
        assert_eq!(a.guard.skipped_epochs, b.guard.skipped_epochs);
        assert_eq!(a.step.rngs, b.step.rngs);
        assert_eq!(a.step.matrices, b.step.matrices);
        // NaN losses survive as the same bit pattern.
        assert_eq!(a.loss_curve[2].to_bits(), b.loss_curve[2].to_bits());
        assert_eq!(bytes, b.to_bytes());
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = sample().to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(TrainCheckpoint::from_bytes(&bad).is_err());
        // Flipped payload bit.
        let mut bad = bytes.clone();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bad[mid] ^= 0x20;
        let err = TrainCheckpoint::from_bytes(&bad).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)));
        assert!(err.to_string().contains("checksum"));
        // Truncation.
        assert!(TrainCheckpoint::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(TrainCheckpoint::from_bytes(&bytes[..5]).is_err());
        // Trailing bytes.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(TrainCheckpoint::from_bytes(&bad).is_err());
    }

    #[test]
    fn save_load_durable_round_trips() {
        let path = std::env::temp_dir().join("e2gcl_ckpt_unit.bin");
        let a = sample();
        a.save_durable(&path).unwrap();
        let b = TrainCheckpoint::load_durable(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn torn_checkpoint_is_quarantined_on_load() {
        let path = std::env::temp_dir().join("e2gcl_ckpt_torn.bin");
        let bytes = sample().to_bytes();
        crate::durable::write_torn(&path, &bytes, bytes.len() / 2).unwrap();
        let err = TrainCheckpoint::load_durable(&path).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)));
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert!(!path.exists(), "torn file must be moved aside");
        let q = std::env::temp_dir().join("e2gcl_ckpt_torn.bin.corrupt");
        assert!(q.exists());
        let _ = std::fs::remove_file(&q);
    }

    #[test]
    fn missing_checkpoint_is_a_typed_error() {
        let err = TrainCheckpoint::load_durable(Path::new("/nonexistent/ckpt.bin")).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)));
    }

    #[test]
    fn config_fingerprint_ignores_durable_block() {
        use crate::config::DurableConfig;
        let base = TrainConfig::default();
        let mut with_durable = base.clone();
        with_durable.durable = Some(DurableConfig {
            path: "/tmp/ckpt.bin".into(),
            every_epochs: 2,
            resume: true,
        });
        assert_eq!(config_fingerprint(&base), config_fingerprint(&with_durable));
        let mut other = base.clone();
        other.epochs += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
    }
}
