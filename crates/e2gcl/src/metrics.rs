//! Classification metrics beyond plain accuracy.
//!
//! The paper reports accuracy; a library release also needs macro-F1 (the
//! class-imbalanced analogs make it informative) and confusion matrices for
//! error analysis.

/// A `k x k` confusion matrix: `counts[true][pred]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds from parallel true/predicted label slices.
    pub fn from_predictions(truth: &[usize], preds: &[usize], num_classes: usize) -> Self {
        assert_eq!(truth.len(), preds.len());
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&t, &p) in truth.iter().zip(preds) {
            assert!(t < num_classes && p < num_classes, "label out of range");
            counts[t][p] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// `counts[true][pred]`.
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }

    /// Per-class precision (0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f32 {
        let predicted: usize = (0..self.num_classes()).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[class][class] as f32 / predicted as f32
        }
    }

    /// Per-class recall (0 when the class has no true members).
    pub fn recall(&self, class: usize) -> f32 {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.counts[class][class] as f32 / actual as f32
        }
    }

    /// Per-class F1.
    pub fn f1(&self, class: usize) -> f32 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r < 1e-12 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-F1: unweighted mean of per-class F1 over classes that occur
    /// (either as truth or prediction).
    pub fn macro_f1(&self) -> f32 {
        let present: Vec<usize> = (0..self.num_classes())
            .filter(|&c| {
                self.counts[c].iter().sum::<usize>() > 0
                    || (0..self.num_classes()).any(|t| self.counts[t][c] > 0)
            })
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f32>() / present.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = [0usize, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.precision(c), 1.0);
            assert_eq!(cm.recall(c), 1.0);
        }
    }

    #[test]
    fn known_confusion() {
        // truth:  0 0 1 1
        // preds:  0 1 1 1
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
        assert!((cm.precision(0) - 1.0).abs() < 1e-6);
        assert!((cm.recall(0) - 0.5).abs() < 1e-6);
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.recall(1) - 1.0).abs() < 1e-6);
        assert!((cm.f1(1) - 0.8).abs() < 1e-6);
        assert!((cm.macro_f1() - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn macro_f1_punishes_minority_failure() {
        // 9 of class 0 correct, 1 of class 1 always wrong.
        let truth: Vec<usize> = (0..10).map(|i| usize::from(i == 9)).collect();
        let preds = vec![0usize; 10];
        let cm = ConfusionMatrix::from_predictions(&truth, &preds, 2);
        assert!(cm.accuracy() > 0.89);
        assert!(cm.macro_f1() < 0.5, "macro-F1 {}", cm.macro_f1());
    }

    #[test]
    fn absent_class_ignored_in_macro() {
        // 3 classes declared, class 2 never appears anywhere.
        let cm = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 3);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
    }
}
