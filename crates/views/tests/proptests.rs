//! Property-based tests of the view generator and augmentation library.

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_views::ops::{apply_general, AugmentationOp, GraphView};
use e2gcl_views::scores::GraphScores;
use e2gcl_views::{uniform, ViewConfig, ViewGenerator};
use proptest::prelude::*;

const N: usize = 10;
const D: usize = 4;

fn edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N, 0..N), 0..3 * N)
}

fn features() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.0f32..2.0, N * D).prop_map(|data| Matrix::from_vec(N, D, data))
}

fn any_op() -> impl Strategy<Value = AugmentationOp> {
    prop_oneof![
        (0..N, 0..N).prop_map(|(u, v)| AugmentationOp::EdgeDeletion(u, v)),
        (0..N, 0..N).prop_map(|(u, v)| AugmentationOp::EdgeAddition(u, v)),
        (0..N, 0..D, -2.0f32..2.0)
            .prop_map(|(n, d, x)| AugmentationOp::FeaturePerturbation(n, d, x)),
        (0..N, 0..D).prop_map(|(n, d)| AugmentationOp::FeatureMasking(n, d)),
        (0..D).prop_map(AugmentationOp::FeatureDropping),
        (0..N).prop_map(AugmentationOp::NodeDropping),
        (
            0..N,
            prop::collection::vec(0..N, 0..3),
            prop::collection::vec(0.0f32..1.0, D)
        )
            .prop_map(|(node, edges, features)| AugmentationOp::NodeAddition {
                node,
                edges,
                features
            }),
        prop::collection::vec(0..N, 0..N).prop_map(|mut keep| {
            keep.sort_unstable();
            keep.dedup();
            AugmentationOp::SubgraphSampling(keep)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Proposition 1, constructively: any sequence drawn from the full
    /// operation set is reproduced exactly by its reduction to the three
    /// general operations.
    #[test]
    fn prop1_reduction_exact(es in edges(), x in features(),
                             ops in prop::collection::vec(any_op(), 1..10)) {
        let g = CsrGraph::from_edges(N, &es);
        let base = GraphView::from_graph(&g, &x);
        let mut direct = base.clone();
        let mut reduced = base;
        for op in &ops {
            let general = op.to_general(&reduced);
            op.apply(&mut direct);
            apply_general(&mut reduced, &general);
            prop_assert_eq!(&direct, &reduced, "diverged on {:?}", op);
        }
    }

    /// Edge scores are finite and non-negative for arbitrary graphs and
    /// features; perturbation probabilities are valid probabilities.
    #[test]
    fn scores_well_formed(es in edges(), x in features(), eta in 0.0f32..1.4) {
        let g = CsrGraph::from_edges(N, &es);
        let s = GraphScores::compute(&g, &x);
        for v in 0..N {
            for u in 0..N {
                for is_n in [true, false] {
                    let w = s.edge_score(&x, v, u, is_n, 0.7);
                    prop_assert!(w.is_finite() && w >= 0.0);
                }
            }
            for dim in 0..D {
                let p = s.perturb_probability(v, dim, eta);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    /// Global views always have the same node universe, a valid structure,
    /// and only perturb nonzero feature entries multiplicatively.
    #[test]
    fn global_views_valid(es in edges(), x in features(),
                          tau in 0.0f32..1.4, eta in 0.0f32..1.4, seed in any::<u64>()) {
        let g = CsrGraph::from_edges(N, &es);
        let gen = ViewGenerator::new(&g, &x, ViewConfig::default(), &mut SeedRng::new(seed));
        let (vg, vx) = gen.sample_global_view(tau, eta, &mut SeedRng::new(seed ^ 1));
        prop_assert_eq!(vg.num_nodes(), N);
        prop_assert!(vg.validate().is_ok());
        for v in 0..N {
            for d in 0..D {
                let orig = x.get(v, d);
                let new = vx.get(v, d);
                if orig == 0.0 {
                    prop_assert_eq!(new, 0.0);
                } else {
                    prop_assert!(new >= -1e-5 && new <= 2.0 * orig + 1e-5);
                }
            }
        }
    }

    /// Ego views are internally consistent for any node and parameters.
    #[test]
    fn ego_views_valid(es in edges(), x in features(), v in 0..N, seed in any::<u64>()) {
        let g = CsrGraph::from_edges(N, &es);
        let gen = ViewGenerator::new(&g, &x, ViewConfig::default(), &mut SeedRng::new(seed));
        let view = gen.sample_ego_view(v, 1.0, 0.6, &mut SeedRng::new(seed ^ 2));
        prop_assert_eq!(view.nodes[view.center], v);
        prop_assert_eq!(view.graph.num_nodes(), view.nodes.len());
        prop_assert_eq!(view.features.rows(), view.nodes.len());
        prop_assert!(view.graph.validate().is_ok());
        let distinct: std::collections::HashSet<_> = view.nodes.iter().collect();
        prop_assert_eq!(distinct.len(), view.nodes.len());
        prop_assert!(view.nodes.iter().all(|&n| n < N));
    }

    /// Uniform corruption primitives preserve the node universe and never
    /// invent edges (drop) / never delete edges (add).
    #[test]
    fn uniform_primitives_sane(es in edges(), p in 0.0f32..1.0, seed in any::<u64>()) {
        let g = CsrGraph::from_edges(N, &es);
        let mut rng = SeedRng::new(seed);
        let dropped = uniform::drop_edges_uniform(&g, p, &mut rng);
        prop_assert!(dropped.num_edges() <= g.num_edges());
        for (u, v) in dropped.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        let added = uniform::add_edges_uniform(&g, 3, &mut rng);
        for (u, v) in g.edges() {
            prop_assert!(added.has_edge(u, v));
        }
        // GCA drop probabilities are valid and within the cap.
        let probs = uniform::gca_edge_drop_probs(&g, p);
        prop_assert_eq!(probs.len(), g.num_edges());
        prop_assert!(probs.iter().all(|&q| (0.0..=p.max(0.0) + 1e-6).contains(&q)));
    }
}
