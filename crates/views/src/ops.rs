//! The graph-augmentation operation library and the Prop. 1 reduction.
//!
//! Proposition 1 states that edge addition, edge deletion and feature
//! perturbation generate the same positive-view space as the full operation
//! set. This module makes that claim *constructive*: every operation
//! implements both a direct [`AugmentationOp::apply`] and a reduction
//! [`AugmentationOp::to_general`] into [`GeneralOp`]s, and the test suite
//! (plus a property test) verifies the two paths produce identical views.
//!
//! Views live over a fixed node universe (standard for node-level
//! contrastive learning): "dropping" a node isolates it and zeroes its
//! features; "adding" a node activates a previously isolated zero node.

use e2gcl_graph::{AdjacencyList, CsrGraph};
use e2gcl_linalg::Matrix;

/// A mutable view state: structure + features over a fixed node universe.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphView {
    /// Editable structure.
    pub adj: AdjacencyList,
    /// Editable features.
    pub x: Matrix,
}

impl GraphView {
    /// Starts a view from an existing graph.
    pub fn from_graph(g: &CsrGraph, x: &Matrix) -> Self {
        assert_eq!(g.num_nodes(), x.rows());
        Self {
            adj: AdjacencyList::from_csr(g),
            x: x.clone(),
        }
    }

    /// Freezes the structure.
    pub fn to_csr(&self) -> CsrGraph {
        self.adj.to_csr()
    }
}

/// The three general operations of Prop. 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GeneralOp {
    /// Insert the undirected edge `(u, v)`.
    AddEdge(usize, usize),
    /// Remove the undirected edge `(u, v)`.
    DeleteEdge(usize, usize),
    /// Set feature `dim` of `node` to `value` (a perturbation by
    /// `value − x[node][dim]`).
    PerturbFeature(usize, usize, f32),
}

impl GeneralOp {
    /// Applies the operation to a view.
    pub fn apply(&self, view: &mut GraphView) {
        match *self {
            GeneralOp::AddEdge(u, v) => {
                view.adj.add_edge(u, v);
            }
            GeneralOp::DeleteEdge(u, v) => {
                view.adj.remove_edge(u, v);
            }
            GeneralOp::PerturbFeature(node, dim, value) => {
                view.x.set(node, dim, value);
            }
        }
    }
}

/// Applies a sequence of general operations.
pub fn apply_general(view: &mut GraphView, ops: &[GeneralOp]) {
    for op in ops {
        op.apply(view);
    }
}

/// The full augmentation-operation set `T` of Prop. 1.
#[derive(Clone, Debug, PartialEq)]
pub enum AugmentationOp {
    /// Remove edge `(u, v)`.
    EdgeDeletion(usize, usize),
    /// Insert edge `(u, v)`.
    EdgeAddition(usize, usize),
    /// Set `x[node][dim] += delta`.
    FeaturePerturbation(usize, usize, f32),
    /// Zero feature `dim` of `node`.
    FeatureMasking(usize, usize),
    /// Zero feature dimension `dim` for every node.
    FeatureDropping(usize),
    /// Isolate `node` and zero its features.
    NodeDropping(usize),
    /// Activate an isolated node: attach `edges` and set `features`.
    NodeAddition {
        /// The node being activated.
        node: usize,
        /// Edges to attach, each `(node, other)`.
        edges: Vec<usize>,
        /// Full feature row to install.
        features: Vec<f32>,
    },
    /// Keep only the induced subgraph on `keep` (drop everything else).
    SubgraphSampling(Vec<usize>),
}

impl AugmentationOp {
    /// Applies the operation directly.
    pub fn apply(&self, view: &mut GraphView) {
        match self {
            AugmentationOp::EdgeDeletion(u, v) => {
                view.adj.remove_edge(*u, *v);
            }
            AugmentationOp::EdgeAddition(u, v) => {
                view.adj.add_edge(*u, *v);
            }
            AugmentationOp::FeaturePerturbation(node, dim, delta) => {
                let cur = view.x.get(*node, *dim);
                view.x.set(*node, *dim, cur + delta);
            }
            AugmentationOp::FeatureMasking(node, dim) => {
                view.x.set(*node, *dim, 0.0);
            }
            AugmentationOp::FeatureDropping(dim) => {
                for node in 0..view.x.rows() {
                    view.x.set(node, *dim, 0.0);
                }
            }
            AugmentationOp::NodeDropping(node) => {
                view.adj.isolate_node(*node);
                for dim in 0..view.x.cols() {
                    view.x.set(*node, dim, 0.0);
                }
            }
            AugmentationOp::NodeAddition {
                node,
                edges,
                features,
            } => {
                for &other in edges {
                    view.adj.add_edge(*node, other);
                }
                view.x.set_row(*node, features);
            }
            AugmentationOp::SubgraphSampling(keep) => {
                let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
                for node in 0..view.adj.num_nodes() {
                    if !keep_set.contains(&node) {
                        AugmentationOp::NodeDropping(node).apply(view);
                    }
                }
            }
        }
    }

    /// Prop. 1: expresses this operation as a sequence of [`GeneralOp`]s,
    /// evaluated against the current `view` state.
    pub fn to_general(&self, view: &GraphView) -> Vec<GeneralOp> {
        match self {
            AugmentationOp::EdgeDeletion(u, v) => vec![GeneralOp::DeleteEdge(*u, *v)],
            AugmentationOp::EdgeAddition(u, v) => vec![GeneralOp::AddEdge(*u, *v)],
            AugmentationOp::FeaturePerturbation(node, dim, delta) => {
                vec![GeneralOp::PerturbFeature(
                    *node,
                    *dim,
                    view.x.get(*node, *dim) + delta,
                )]
            }
            AugmentationOp::FeatureMasking(node, dim) => {
                vec![GeneralOp::PerturbFeature(*node, *dim, 0.0)]
            }
            AugmentationOp::FeatureDropping(dim) => (0..view.x.rows())
                .map(|node| GeneralOp::PerturbFeature(node, *dim, 0.0))
                .collect(),
            AugmentationOp::NodeDropping(node) => {
                let mut ops: Vec<GeneralOp> = view
                    .adj
                    .neighbors(*node)
                    .map(|u| GeneralOp::DeleteEdge(*node, u))
                    .collect();
                ops.extend(
                    (0..view.x.cols()).map(|dim| GeneralOp::PerturbFeature(*node, dim, 0.0)),
                );
                ops
            }
            AugmentationOp::NodeAddition {
                node,
                edges,
                features,
            } => {
                let mut ops: Vec<GeneralOp> = edges
                    .iter()
                    .map(|&other| GeneralOp::AddEdge(*node, other))
                    .collect();
                ops.extend(
                    features
                        .iter()
                        .enumerate()
                        .map(|(dim, &v)| GeneralOp::PerturbFeature(*node, dim, v)),
                );
                ops
            }
            AugmentationOp::SubgraphSampling(keep) => {
                let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
                let mut ops = Vec::new();
                for node in 0..view.adj.num_nodes() {
                    if keep_set.contains(&node) {
                        continue;
                    }
                    for u in view.adj.neighbors(node) {
                        // Emit each edge once; also handle kept-to-dropped.
                        if u > node || keep_set.contains(&u) {
                            ops.push(GeneralOp::DeleteEdge(node, u));
                        }
                    }
                    ops.extend(
                        (0..view.x.cols()).map(|dim| GeneralOp::PerturbFeature(node, dim, 0.0)),
                    );
                }
                ops
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    fn base_view() -> GraphView {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]);
        let mut x = Matrix::zeros(5, 3);
        for v in 0..5 {
            for d in 0..3 {
                x.set(v, d, (v * 3 + d) as f32 * 0.1 + 0.1);
            }
        }
        GraphView {
            adj: AdjacencyList::from_csr(&g),
            x,
        }
    }

    /// The constructive Prop. 1 check: direct application == reduction.
    fn assert_reduction_equivalent(op: AugmentationOp) {
        let base = base_view();
        let mut direct = base.clone();
        op.apply(&mut direct);
        let mut via_general = base.clone();
        let general = op.to_general(&base);
        apply_general(&mut via_general, &general);
        assert_eq!(
            direct, via_general,
            "op {op:?} not reproduced by {general:?}"
        );
    }

    #[test]
    fn prop1_edge_ops() {
        assert_reduction_equivalent(AugmentationOp::EdgeDeletion(0, 1));
        assert_reduction_equivalent(AugmentationOp::EdgeAddition(0, 4));
        // No-op variants (deleting a missing edge, adding an existing one).
        assert_reduction_equivalent(AugmentationOp::EdgeDeletion(0, 4));
        assert_reduction_equivalent(AugmentationOp::EdgeAddition(0, 1));
    }

    #[test]
    fn prop1_feature_ops() {
        assert_reduction_equivalent(AugmentationOp::FeaturePerturbation(2, 1, 0.7));
        assert_reduction_equivalent(AugmentationOp::FeatureMasking(3, 0));
        assert_reduction_equivalent(AugmentationOp::FeatureDropping(2));
    }

    #[test]
    fn prop1_node_ops() {
        assert_reduction_equivalent(AugmentationOp::NodeDropping(2));
        assert_reduction_equivalent(AugmentationOp::NodeAddition {
            node: 4,
            edges: vec![0, 1],
            features: vec![9.0, 8.0, 7.0],
        });
    }

    #[test]
    fn prop1_subgraph_sampling() {
        assert_reduction_equivalent(AugmentationOp::SubgraphSampling(vec![0, 1, 2]));
        assert_reduction_equivalent(AugmentationOp::SubgraphSampling(vec![]));
        assert_reduction_equivalent(AugmentationOp::SubgraphSampling(vec![0, 1, 2, 3, 4]));
    }

    /// Randomised Prop. 1 check over arbitrary op sequences.
    #[test]
    fn prop1_random_sequences() {
        let mut rng = SeedRng::new(42);
        for _ in 0..50 {
            let base = base_view();
            let mut direct = base.clone();
            let mut reduced = base.clone();
            for _ in 0..6 {
                let op = match rng.below(8) {
                    0 => AugmentationOp::EdgeDeletion(rng.below(5), rng.below(5)),
                    1 => AugmentationOp::EdgeAddition(rng.below(5), rng.below(5)),
                    2 => AugmentationOp::FeaturePerturbation(
                        rng.below(5),
                        rng.below(3),
                        rng.uniform_range(-1.0, 1.0),
                    ),
                    3 => AugmentationOp::FeatureMasking(rng.below(5), rng.below(3)),
                    4 => AugmentationOp::FeatureDropping(rng.below(3)),
                    5 => AugmentationOp::NodeDropping(rng.below(5)),
                    6 => AugmentationOp::NodeAddition {
                        node: rng.below(5),
                        edges: vec![rng.below(5)],
                        features: vec![rng.uniform(), rng.uniform(), rng.uniform()],
                    },
                    _ => {
                        let k = rng.below(5);
                        AugmentationOp::SubgraphSampling(rng.sample_without_replacement(5, k))
                    }
                };
                // Self-loop edge ops are no-ops either way.
                let general = op.to_general(&reduced);
                op.apply(&mut direct);
                apply_general(&mut reduced, &general);
                assert_eq!(direct, reduced, "diverged on {op:?}");
            }
        }
    }

    #[test]
    fn node_drop_isolates_and_zeroes() {
        let mut v = base_view();
        AugmentationOp::NodeDropping(1).apply(&mut v);
        assert_eq!(v.adj.degree(1), 0);
        assert!(v.x.row(1).iter().all(|&f| f == 0.0));
        // Other nodes untouched.
        assert!(v.adj.has_edge(2, 3));
    }
}
