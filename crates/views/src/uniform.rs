//! Uniform and weighted corruption primitives.
//!
//! These implement (a) the `E²GCL\F\S`-style *uniform* ablations of
//! Table VIII and (b) the augmentations the baselines use: GRACE's uniform
//! edge dropping + feature-dimension masking, GCA's centrality-weighted
//! variants, GraphCL's node dropping, and uniform edge addition.

use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};

/// Drops each edge independently with probability `p`.
pub fn drop_edges_uniform(g: &CsrGraph, p: f32, rng: &mut SeedRng) -> CsrGraph {
    let edges: Vec<(usize, usize)> = g.edges().filter(|_| !rng.bernoulli(p)).collect();
    CsrGraph::from_edges(g.num_nodes(), &edges)
}

/// Drops edge `i` with probability `drop_prob[i]` (parallel to `g.edges()`),
/// each clamped to `max_p` — GCA's adaptive topology augmentation.
pub fn drop_edges_weighted(
    g: &CsrGraph,
    drop_prob: &[f32],
    max_p: f32,
    rng: &mut SeedRng,
) -> CsrGraph {
    let edges: Vec<(usize, usize)> = g
        .edges()
        .zip(drop_prob)
        .filter(|&(_, &p)| !rng.bernoulli(p.min(max_p)))
        .map(|(e, _)| e)
        .collect();
    CsrGraph::from_edges(g.num_nodes(), &edges)
}

/// GCA's per-edge drop probabilities from degree centrality:
/// `p_e = min( (w_max − w_e) / (w_max − w_mean) · p, p )` with
/// `w_e = mean log-centrality of the endpoints`, normalised so that
/// unimportant (low-centrality) edges drop more.
pub fn gca_edge_drop_probs(g: &CsrGraph, p: f32) -> Vec<f32> {
    let cent = e2gcl_graph::centrality::degree_centrality(g);
    let w: Vec<f32> = g.edges().map(|(u, v)| 0.5 * (cent[u] + cent[v])).collect();
    if w.is_empty() {
        return Vec::new();
    }
    let w_max = w.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let w_mean = w.iter().sum::<f32>() / w.len() as f32;
    let denom = (w_max - w_mean).max(1e-9);
    w.iter()
        .map(|&wi| (p * (w_max - wi) / denom).min(p))
        .collect()
}

/// Adds `count` uniformly random non-existing edges.
pub fn add_edges_uniform(g: &CsrGraph, count: usize, rng: &mut SeedRng) -> CsrGraph {
    let n = g.num_nodes();
    let mut edges: Vec<(usize, usize)> = g.edges().collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < count && attempts < count * 50 + 100 {
        attempts += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v && !g.has_edge(u, v) {
            edges.push((u, v));
            added += 1;
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// GRACE-style feature masking: zeroes entire feature *dimensions* with
/// probability `p` each (the same mask applied to every node).
pub fn mask_feature_dims(x: &Matrix, p: f32, rng: &mut SeedRng) -> Matrix {
    let mask: Vec<bool> = (0..x.cols()).map(|_| rng.bernoulli(p)).collect();
    let mut out = x.clone();
    for r in 0..out.rows() {
        for (v, &m) in out.row_mut(r).iter_mut().zip(&mask) {
            if m {
                *v = 0.0;
            }
        }
    }
    out
}

/// GCA-style weighted dimension masking: dimension `i` masks with
/// probability `dim_probs[i]` (clamped to `max_p`).
pub fn mask_feature_dims_weighted(
    x: &Matrix,
    dim_probs: &[f32],
    max_p: f32,
    rng: &mut SeedRng,
) -> Matrix {
    assert_eq!(dim_probs.len(), x.cols());
    let mask: Vec<bool> = dim_probs
        .iter()
        .map(|&p| rng.bernoulli(p.min(max_p)))
        .collect();
    let mut out = x.clone();
    for r in 0..out.rows() {
        for (v, &m) in out.row_mut(r).iter_mut().zip(&mask) {
            if m {
                *v = 0.0;
            }
        }
    }
    out
}

/// Uniform entry-wise multiplicative perturbation — Eq. (16) with a flat
/// probability `p` instead of the importance-aware one (`E²GCL\F`).
pub fn perturb_features_uniform(x: &Matrix, p: f32, rng: &mut SeedRng) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        for v in out.row_mut(r) {
            if *v != 0.0 && rng.bernoulli(p) {
                *v += (2.0 * rng.uniform() - 1.0) * *v;
            }
        }
    }
    out
}

/// GraphCL-style node dropping: isolates a `p` fraction of nodes (indices
/// stay stable; features are zeroed by the caller if desired).
pub fn drop_nodes_uniform(g: &CsrGraph, p: f32, rng: &mut SeedRng) -> CsrGraph {
    let n = g.num_nodes();
    let dropped: Vec<bool> = (0..n).map(|_| rng.bernoulli(p)).collect();
    let edges: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(u, v)| !dropped[u] && !dropped[v])
        .collect();
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;

    fn graph(seed: u64) -> CsrGraph {
        generators::erdos_renyi(100, 0.08, &mut SeedRng::new(seed))
    }

    #[test]
    fn drop_edges_extremes() {
        let g = graph(0);
        let mut rng = SeedRng::new(1);
        assert_eq!(drop_edges_uniform(&g, 0.0, &mut rng), g);
        assert_eq!(drop_edges_uniform(&g, 1.0, &mut rng).num_edges(), 0);
    }

    #[test]
    fn drop_edges_rate_roughly_p() {
        let g = graph(2);
        let d = drop_edges_uniform(&g, 0.3, &mut SeedRng::new(3));
        let kept = d.num_edges() as f64 / g.num_edges() as f64;
        assert!((kept - 0.7).abs() < 0.12, "kept {kept}");
    }

    #[test]
    fn gca_probs_drop_low_centrality_edges_more() {
        // A hub chain: edges near the hub get low drop probability.
        let mut edges = vec![];
        for v in 1..30 {
            edges.push((0, v));
        }
        edges.push((28, 29)); // leaf-leaf edge: lowest centrality
        let g = CsrGraph::from_edges(30, &edges);
        let probs = gca_edge_drop_probs(&g, 0.5);
        let edge_list: Vec<(usize, usize)> = g.edges().collect();
        let leaf_edge = edge_list.iter().position(|&e| e == (28, 29)).unwrap();
        let hub_edge = edge_list.iter().position(|&e| e == (0, 1)).unwrap();
        assert!(probs[leaf_edge] > probs[hub_edge]);
        assert!(probs.iter().all(|&p| (0.0..=0.5).contains(&p)));
    }

    #[test]
    fn add_edges_increases_count() {
        let g = graph(4);
        let before = g.num_edges();
        let a = add_edges_uniform(&g, 25, &mut SeedRng::new(5));
        assert_eq!(a.num_edges(), before + 25);
    }

    #[test]
    fn mask_dims_is_columnwise() {
        let x = Matrix::filled(10, 20, 1.0);
        let m = mask_feature_dims(&x, 0.5, &mut SeedRng::new(6));
        for c in 0..20 {
            let col: Vec<f32> = (0..10).map(|r| m.get(r, c)).collect();
            let all_zero = col.iter().all(|&v| v == 0.0);
            let all_one = col.iter().all(|&v| v == 1.0);
            assert!(all_zero || all_one, "column {c} mixed");
        }
    }

    #[test]
    fn perturb_uniform_respects_zero_entries() {
        let mut x = Matrix::zeros(5, 5);
        x.set(1, 1, 2.0);
        let p = perturb_features_uniform(&x, 1.0, &mut SeedRng::new(7));
        for r in 0..5 {
            for c in 0..5 {
                if (r, c) != (1, 1) {
                    assert_eq!(p.get(r, c), 0.0);
                }
            }
        }
        let v = p.get(1, 1);
        assert!((0.0..=4.0).contains(&v));
    }

    #[test]
    fn drop_nodes_isolates() {
        let g = graph(8);
        let d = drop_nodes_uniform(&g, 1.0, &mut SeedRng::new(9));
        assert_eq!(d.num_edges(), 0);
        assert_eq!(d.num_nodes(), g.num_nodes());
    }
}
