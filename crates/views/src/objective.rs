//! The Eq. (15) view-generation objective.
//!
//! `l_vg(G, v) = ||ĥ_v − h_v||₂ + ||h̃_v − h_v||₂ − ||r̂_v − r̃_v||₂`
//!
//! The first two terms measure how much locality the views lose (smaller is
//! better); the last rewards diversity of the raw aggregates. The generator
//! can't optimise this directly (Theorem 4: NP-hard), but the bench harness
//! and tests use it to confirm that score-aware sampling dominates uniform
//! sampling — the mechanism behind Table VIII.

use e2gcl_graph::{norm, CsrGraph};
use e2gcl_linalg::{ops, Matrix};

/// One full-graph view: structure + features.
pub type View = (CsrGraph, Matrix);

/// Evaluates the mean Eq. (15) objective over `nodes`, given an encoder
/// `embed` (any map from a graph view to per-node embeddings) and the GCN
/// depth `layers` used for the raw-aggregate diversity term.
pub fn view_generation_objective(
    original: &View,
    view_a: &View,
    view_b: &View,
    nodes: &[usize],
    layers: usize,
    mut embed: impl FnMut(&CsrGraph, &Matrix) -> Matrix,
) -> f64 {
    let h = embed(&original.0, &original.1);
    let ha = embed(&view_a.0, &view_a.1);
    let hb = embed(&view_b.0, &view_b.1);
    let ra = norm::raw_aggregate(&view_a.0, &view_a.1, layers);
    let rb = norm::raw_aggregate(&view_b.0, &view_b.1, layers);
    let mut total = 0.0f64;
    for &v in nodes {
        let locality = ops::dist(ha.row(v), h.row(v)) + ops::dist(hb.row(v), h.row(v));
        let diversity = ops::dist(ra.row(v), rb.row(v));
        total += f64::from(locality - diversity);
    }
    total / nodes.len().max(1) as f64
}

/// Just the locality half of Eq. (15) (used to isolate the effect in
/// ablations).
pub fn locality_term(
    original: &View,
    view: &View,
    nodes: &[usize],
    mut embed: impl FnMut(&CsrGraph, &Matrix) -> Matrix,
) -> f64 {
    let h = embed(&original.0, &original.1);
    let hv = embed(&view.0, &view.1);
    nodes
        .iter()
        .map(|&v| f64::from(ops::dist(hv.row(v), h.row(v))))
        .sum::<f64>()
        / nodes.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;
    use e2gcl_linalg::SeedRng;

    fn raw_embed(layers: usize) -> impl FnMut(&CsrGraph, &Matrix) -> Matrix {
        move |g, x| norm::raw_aggregate(g, x, layers)
    }

    fn setup() -> (CsrGraph, Matrix) {
        let mut rng = SeedRng::new(0);
        let labels: Vec<usize> = (0..60).map(|v| v / 30).collect();
        let g = generators::dc_sbm(&labels, 2, 5.0, 0.9, &vec![1.0; 60], &mut rng);
        let mut x = Matrix::zeros(60, 4);
        for (v, &label) in labels.iter().enumerate() {
            x.set(v, label, 1.0);
        }
        (g, x)
    }

    #[test]
    fn identical_views_zero_locality_zero_diversity() {
        let (g, x) = setup();
        let orig = (g.clone(), x.clone());
        let nodes: Vec<usize> = (0..20).collect();
        let obj =
            view_generation_objective(&orig, &orig.clone(), &orig.clone(), &nodes, 2, raw_embed(2));
        assert!(obj.abs() < 1e-6);
    }

    #[test]
    fn heavier_corruption_raises_locality_term() {
        let (g, x) = setup();
        let orig = (g.clone(), x.clone());
        let mut rng = SeedRng::new(1);
        let light = (
            crate::uniform::drop_edges_uniform(&g, 0.1, &mut rng),
            x.clone(),
        );
        let heavy = (
            crate::uniform::drop_edges_uniform(&g, 0.9, &mut rng),
            x.clone(),
        );
        let nodes: Vec<usize> = (0..60).collect();
        let l_light = locality_term(&orig, &light, &nodes, raw_embed(2));
        let l_heavy = locality_term(&orig, &heavy, &nodes, raw_embed(2));
        assert!(l_heavy > l_light, "{l_heavy} !> {l_light}");
    }

    #[test]
    fn diverse_views_lower_objective_than_identical_corruption() {
        let (g, x) = setup();
        let orig = (g.clone(), x.clone());
        let mut rng = SeedRng::new(2);
        let va = (
            crate::uniform::drop_edges_uniform(&g, 0.3, &mut rng),
            x.clone(),
        );
        let vb = (
            crate::uniform::drop_edges_uniform(&g, 0.3, &mut rng),
            x.clone(),
        );
        let nodes: Vec<usize> = (0..60).collect();
        let two_distinct = view_generation_objective(&orig, &va, &vb, &nodes, 2, raw_embed(2));
        let duplicated =
            view_generation_objective(&orig, &va, &va.clone(), &nodes, 2, raw_embed(2));
        // Same locality cost, but distinct views earn the diversity reward.
        assert!(two_distinct < duplicated);
    }

    /// The Table VIII edge mechanism: score-aware sampling keeps intra-class
    /// (similar) neighbours at a higher rate than the graph's base
    /// homophily, because the similarity term in `w^e` up-weights them —
    /// uniform deletion would keep intra- and inter-class edges equally.
    #[test]
    fn score_aware_sampling_raises_kept_homophily() {
        let (g, x) = setup();
        let labels: Vec<usize> = (0..60).map(|v| v / 30).collect();
        let mut rng = SeedRng::new(3);
        let gen = crate::sampler::ViewGenerator::new(
            &g,
            &x,
            crate::sampler::ViewConfig {
                candidate_cap: 0,
                ..Default::default()
            },
            &mut rng,
        );
        let homophily = |graph: &CsrGraph| -> f64 {
            let mut same = 0usize;
            let mut total = 0usize;
            for (u, v) in graph.edges() {
                total += 1;
                if labels[u] == labels[v] {
                    same += 1;
                }
            }
            same as f64 / total.max(1) as f64
        };
        let base = homophily(&g);
        let mut kept = 0.0;
        let trials = 10;
        for t in 0..trials {
            let (vg, _) = gen.sample_global_view(0.5, 0.0, &mut SeedRng::new(100 + t));
            kept += homophily(&vg) / trials as f64;
        }
        assert!(
            kept > base,
            "kept homophily {kept} should exceed base {base}"
        );
    }

    /// The Table VIII feature mechanism: at matched η, Eq. (16) perturbs the
    /// class-anchor (important) feature dimensions less than uniform
    /// perturbation does.
    #[test]
    fn score_aware_perturbation_protects_important_dims() {
        let (g, x) = setup();
        let mut rng = SeedRng::new(4);
        let gen = crate::sampler::ViewGenerator::new(
            &g,
            &x,
            crate::sampler::ViewConfig::default(),
            &mut rng,
        );
        // Dims 0-1 are the class anchors (frequent => important).
        let anchor_change = |vx: &Matrix| -> f64 {
            let mut delta = 0.0f64;
            for v in 0..60 {
                for d in 0..2 {
                    delta += f64::from((vx.get(v, d) - x.get(v, d)).abs());
                }
            }
            delta
        };
        let mut aware = 0.0;
        let mut uniform = 0.0;
        let eta = 0.8;
        for t in 0..10 {
            let mut r = SeedRng::new(200 + t);
            let (_, vx) = gen.sample_global_view(1.0, eta, &mut r);
            aware += anchor_change(&vx);
            let ux = crate::uniform::perturb_features_uniform(&x, eta * 0.5, &mut r);
            uniform += anchor_change(&ux);
        }
        assert!(
            aware < uniform,
            "aware anchor damage {aware} should be below uniform {uniform}"
        );
    }
}
