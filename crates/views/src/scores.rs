//! Edge and feature importance scores (paper §IV-C1, §IV-C2).

use e2gcl_graph::{centrality, CsrGraph};
use e2gcl_linalg::{ops, Matrix};

/// Which ingredients the §IV-C1 edge score uses — the combined recipe is
/// the paper's; the single-ingredient variants back the DESIGN.md §6
/// ablation of the score design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeRecipe {
    /// Centrality + similarity (the paper's `w^e`).
    #[default]
    Combined,
    /// Centrality term only.
    CentralityOnly,
    /// Similarity term only.
    SimilarityOnly,
}

/// Precomputed importance scores for one graph.
///
/// Everything here depends only on raw graph data (degrees + features), not
/// on GNN parameters — the §IV-C *Remarks* point that makes the generator
/// encoder-agnostic — so it is computed once and reused across epochs.
#[derive(Clone, Debug)]
pub struct GraphScores {
    /// Log-degree centrality `φ_c(v)`.
    pub centrality: Vec<f32>,
    /// Global per-dimension feature importance `w_i^f = Σ_v φ_c(v)·|x_v[i]|`.
    pub feature_global: Vec<f32>,
    /// Similarity offset `c = max_{(v,u) ∈ E} ||x_v − x_u||`.
    pub sim_offset: f32,
    /// Max of the node-level feature score `w^f_{x_v[i]} = w_i^f·φ_c(v)`
    /// over all `(v, i)` pairs.
    pub feature_max: f32,
    /// Mean of the node-level feature score over all `(v, i)` pairs.
    pub feature_mean: f32,
}

impl GraphScores {
    /// Computes all scores for `(g, x)`.
    pub fn compute(g: &CsrGraph, x: &Matrix) -> GraphScores {
        assert_eq!(g.num_nodes(), x.rows());
        let cent = centrality::degree_centrality(g);
        let d = x.cols();
        let n = g.num_nodes();
        // Global feature importance.
        let mut feature_global = vec![0.0f32; d];
        for (v, &phi) in cent.iter().enumerate() {
            for (w, &f) in feature_global.iter_mut().zip(x.row(v)) {
                *w += phi * f.abs();
            }
        }
        // Similarity offset over existing edges.
        let mut sim_offset = 0.0f32;
        for (u, v) in g.edges() {
            sim_offset = sim_offset.max(ops::dist(x.row(u), x.row(v)));
        }
        // Eq. (16) normalisation constants. The node-level score factorises
        // as w^f_{x_v[i]} = w_i^f · φ_c(v); normalising per dimension (one
        // literal reading of the paper) would cancel the dimension term
        // entirely, so — following GCA, which this score extends — we
        // normalise over all (v, i) pairs, keeping both the dimension-
        // importance and node-centrality effects.
        let phi_max = cent.iter().cloned().fold(0.0f32, f32::max);
        let phi_mean = cent.iter().sum::<f32>() / n.max(1) as f32;
        let w_max = feature_global.iter().cloned().fold(0.0f32, f32::max) * phi_max;
        let w_mean = feature_global.iter().sum::<f32>() / d.max(1) as f32 * phi_mean;
        GraphScores {
            centrality: cent,
            feature_global,
            sim_offset,
            feature_max: w_max,
            feature_mean: w_mean,
        }
    }

    /// The §IV-C1 edge score `w^e_{v,u}` for target node `v` and candidate
    /// `u`. `is_neighbor` selects the existing-edge branch (keep weight)
    /// versus the addition branch. `beta` balances the two branches.
    pub fn edge_score(&self, x: &Matrix, v: usize, u: usize, is_neighbor: bool, beta: f32) -> f32 {
        self.edge_score_with(x, v, u, is_neighbor, beta, EdgeRecipe::Combined)
    }

    /// [`Self::edge_score`] with an explicit ingredient recipe (ablations).
    pub fn edge_score_with(
        &self,
        x: &Matrix,
        v: usize,
        u: usize,
        is_neighbor: bool,
        beta: f32,
        recipe: EdgeRecipe,
    ) -> f32 {
        let sim = match recipe {
            EdgeRecipe::CentralityOnly => 0.0,
            _ => self.sim_offset - ops::dist(x.row(v), x.row(u)),
        };
        let cent = match recipe {
            EdgeRecipe::SimilarityOnly => 0.0,
            _ => self.centrality[u],
        };
        // Exponent capped to keep weights finite on extreme graphs.
        if is_neighbor {
            beta * (cent + sim).min(30.0).exp()
        } else {
            (1.0 - beta) * (-cent + sim).min(30.0).exp()
        }
    }

    /// Eq. (16) perturbation probability for feature `(v, dim)` under
    /// hyperparameter `eta`: `η · (w_max − w^f_{x_v[dim]}) / (w_max − w_mean)`,
    /// clamped to `[0, 1]`. Low-importance features perturb more.
    pub fn perturb_probability(&self, v: usize, dim: usize, eta: f32) -> f32 {
        let w = self.feature_global[dim] * self.centrality[v];
        let denom = self.feature_max - self.feature_mean;
        if denom <= 1e-12 {
            // Uninformative feature space: fall back to a flat rate.
            return (eta * 0.5).clamp(0.0, 1.0);
        }
        (eta * (self.feature_max - w) / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub-and-spoke graph with one informative feature dimension.
    fn setup() -> (CsrGraph, Matrix, GraphScores) {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let mut x = Matrix::zeros(5, 2);
        // Dim 0 hot everywhere (important); dim 1 only on the leaf (rare).
        for v in 0..5 {
            x.set(v, 0, 1.0);
        }
        x.set(4, 1, 1.0);
        let s = GraphScores::compute(&g, &x);
        (g, x, s)
    }

    #[test]
    fn centrality_follows_degree() {
        let (_, _, s) = setup();
        assert!(s.centrality[0] > s.centrality[3]);
        assert!(s.centrality[3] > s.centrality[1]);
    }

    #[test]
    fn global_feature_importance_orders_dims() {
        let (_, _, s) = setup();
        assert!(
            s.feature_global[0] > s.feature_global[1],
            "ubiquitous dim must outrank rare dim: {:?}",
            s.feature_global
        );
    }

    #[test]
    fn edge_score_prefers_central_similar_neighbors() {
        let (_, x, s) = setup();
        // From leaf 4's perspective: keeping the hub-side neighbour 3 vs a
        // hypothetical keep of low-degree node 1 (same features).
        let keep_central = s.edge_score(&x, 4, 0, true, 0.5);
        let keep_leaf = s.edge_score(&x, 4, 1, true, 0.5);
        assert!(keep_central > keep_leaf);
    }

    #[test]
    fn edge_addition_prefers_low_centrality() {
        let (_, x, s) = setup();
        // Adding an edge to the hub is riskier than to a leaf.
        let add_hub = s.edge_score(&x, 4, 0, false, 0.5);
        let add_leaf = s.edge_score(&x, 4, 2, false, 0.5);
        assert!(add_leaf > add_hub);
    }

    #[test]
    fn perturb_probability_higher_for_unimportant_dim() {
        let (_, _, s) = setup();
        // On the same (non-hub) node, the rare dim 1 perturbs more.
        let p_important = s.perturb_probability(1, 0, 0.8);
        let p_unimportant = s.perturb_probability(1, 1, 0.8);
        assert!(
            p_unimportant > p_important,
            "{p_unimportant} !> {p_important}"
        );
    }

    #[test]
    fn perturb_probability_lower_for_central_node() {
        let (_, _, s) = setup();
        // Same dim, hub vs leaf: the hub's features perturb less.
        let p_hub = s.perturb_probability(0, 0, 0.8);
        let p_leaf = s.perturb_probability(1, 0, 0.8);
        assert!(p_hub < p_leaf, "{p_hub} !< {p_leaf}");
    }

    #[test]
    fn perturb_probability_clamped() {
        let (_, _, s) = setup();
        for v in 0..5 {
            for d in 0..2 {
                let p = s.perturb_probability(v, d, 1.4); // paper's max η
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn degenerate_feature_space_falls_back() {
        // Identical nodes on a regular graph ⇒ max == mean ⇒ flat fallback.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let x = Matrix::filled(3, 2, 1.0);
        let s = GraphScores::compute(&g, &x);
        let p = s.perturb_probability(0, 0, 0.8);
        assert!((p - 0.4).abs() < 1e-6);
    }

    #[test]
    fn sim_offset_nonnegative_and_zero_without_edges() {
        let g = CsrGraph::from_edges(3, &[]);
        let x = Matrix::filled(3, 2, 1.0);
        let s = GraphScores::compute(&g, &x);
        assert_eq!(s.sim_offset, 0.0);
    }
}
