//! Algorithm 3: edge-aware and feature-aware positive-view sampling.
//!
//! Two forms are provided:
//!
//! * [`ViewGenerator::sample_ego_view`] — the literal Alg. 3: grow a view of
//!   a single node hop by hop, sampling each frontier node's neighbours from
//!   its 1∪2-hop candidates with probability ∝ the edge score `w^e`.
//! * [`ViewGenerator::sample_global_view`] — the batched training form: the
//!   same per-node neighbourhood sampling applied to *every* node at once,
//!   yielding one full-graph view per call. Because an `L`-layer GCN's
//!   output at `v` depends only on `v`'s `L`-hop neighbourhood, reading node
//!   `v` out of the global view is distributionally equivalent to encoding
//!   its per-node view — at a fraction of the cost. (Every GCL baseline
//!   trains this way too, so the efficiency comparisons stay fair.)
//!
//! Candidate lists and edge scores are precomputed once (the paper's §IV-C
//! complexity argument assumes the same), so per-epoch sampling is cheap.

use crate::scores::{EdgeRecipe, GraphScores};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};
use rayon::prelude::*;

/// Hyperparameters of the view generator.
#[derive(Clone, Debug)]
pub struct ViewConfig {
    /// GCN depth `L` (ego views are grown `L` hops).
    pub layers: usize,
    /// Neighbour sampling ratio `τ`: each node draws `⌈τ·|N_u|⌉` samples.
    pub tau: f32,
    /// Feature perturbation scale `η` of Eq. (16).
    pub eta: f32,
    /// Balance between the keep-edge and add-edge score branches.
    pub beta: f32,
    /// Cap on 2-hop candidates per node (keeps dense graphs tractable).
    pub candidate_cap: usize,
    /// When false, neighbour sampling ignores edge scores (uniform over
    /// candidates) — the `E²GCL\S` ablation.
    pub edge_aware: bool,
    /// When false, feature perturbation uses a flat `η/2` probability
    /// instead of Eq. (16) — the `E²GCL\F` ablation.
    pub feature_aware: bool,
    /// Edge-score ingredient recipe (DESIGN.md §6 ablation).
    pub edge_recipe: EdgeRecipe,
}

impl Default for ViewConfig {
    fn default() -> Self {
        Self {
            layers: 2,
            tau: 1.0,
            eta: 0.6,
            beta: 0.7,
            candidate_cap: 20,
            edge_aware: true,
            feature_aware: true,
            edge_recipe: EdgeRecipe::default(),
        }
    }
}

/// A per-node positive view (`Ĝ_v` of Alg. 3).
#[derive(Clone, Debug)]
pub struct EgoView {
    /// Structure over local indices.
    pub graph: CsrGraph,
    /// `nodes[local] = global` mapping.
    pub nodes: Vec<usize>,
    /// Local index of the target node `v`.
    pub center: usize,
    /// Perturbed features (local rows).
    pub features: Matrix,
}

/// Precomputed sampling state for one graph.
pub struct ViewGenerator {
    graph: CsrGraph,
    x: Matrix,
    /// Importance scores (public for ablations and diagnostics).
    pub scores: GraphScores,
    config: ViewConfig,
    /// Per-node candidate lists: `N_u` then capped 2-hop extras.
    candidates: Vec<Vec<u32>>,
    /// Edge score of each candidate, parallel to `candidates`.
    weights: Vec<Vec<f32>>,
    /// Nonzero feature columns per node (perturbation touches only these —
    /// Eq. (16) is multiplicative, so zero entries are fixed points).
    nonzero_dims: Vec<Vec<u32>>,
}

impl ViewGenerator {
    /// Precomputes scores, candidates and weights for `(g, x)`.
    pub fn new(g: &CsrGraph, x: &Matrix, config: ViewConfig, rng: &mut SeedRng) -> Self {
        assert_eq!(g.num_nodes(), x.rows());
        let scores = GraphScores::compute(g, x);
        let n = g.num_nodes();
        let cap = config.candidate_cap;
        let beta = config.beta;
        // Two-hop candidate collection, capped by random subsampling.
        let mut cand_rng: Vec<SeedRng> = (0..n).map(|v| rng.fork(&format!("cand{v}"))).collect();
        let per_node: Vec<(Vec<u32>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .zip(cand_rng.par_iter_mut())
            .map(|(u, local_rng)| {
                let mut cands: Vec<u32> = g.neighbors(u).to_vec();
                let direct: std::collections::HashSet<u32> = cands.iter().copied().collect();
                // Gather 2-hop candidates (excluding u and 1-hop).
                let mut two_hop: Vec<u32> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for &w in g.neighbors(u) {
                    for &t in g.neighbors(w as usize) {
                        if t as usize != u && !direct.contains(&t) && seen.insert(t) {
                            two_hop.push(t);
                        }
                    }
                }
                if two_hop.len() > cap {
                    let picked = local_rng.sample_without_replacement(two_hop.len(), cap);
                    two_hop = picked.into_iter().map(|i| two_hop[i]).collect();
                }
                let split = cands.len();
                cands.extend_from_slice(&two_hop);
                let weights: Vec<f32> = if config.edge_aware {
                    cands
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            scores.edge_score_with(
                                x,
                                u,
                                c as usize,
                                i < split,
                                beta,
                                config.edge_recipe,
                            )
                        })
                        .collect()
                } else {
                    // Uniform ablation: keep the aware mode's β split
                    // between the keep-edge and add-edge branches, but make
                    // the within-branch choice uniform. Flat 1.0 weights
                    // would instead hand most of the mass to the (much more
                    // numerous) 2-hop candidates, turning "uniform
                    // modification" into aggressive rewiring.
                    let n_keep = split.max(1) as f32;
                    let n_add = (cands.len() - split).max(1) as f32;
                    (0..cands.len())
                        .map(|i| {
                            if i < split {
                                beta / n_keep
                            } else {
                                (1.0 - beta) / n_add
                            }
                        })
                        .collect()
                };
                (cands, weights)
            })
            .collect();
        let (candidates, weights): (Vec<_>, Vec<_>) = per_node.into_iter().unzip();
        let nonzero_dims = (0..n)
            .map(|v| {
                x.row(v)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f != 0.0)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        Self {
            graph: g.clone(),
            x: x.clone(),
            scores,
            config,
            candidates,
            weights,
            nonzero_dims,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &ViewConfig {
        &self.config
    }

    /// Draws `⌈τ·|N_u|⌉` weighted samples (with replacement, deduplicated)
    /// from `u`'s candidate list — the `Sample(V_u^N, P(·|u,V_u^N), τ|N_u|)`
    /// step of Alg. 3.
    fn sample_neighbors(&self, u: usize, tau: f32, rng: &mut SeedRng) -> Vec<usize> {
        let cands = &self.candidates[u];
        if cands.is_empty() {
            return Vec::new();
        }
        let draws = ((tau * self.graph.degree(u) as f32).ceil() as usize).max(1);
        let mut out = Vec::with_capacity(draws.min(cands.len()));
        let mut seen = vec![false; cands.len()];
        for _ in 0..draws {
            let i = rng.weighted_index(&self.weights[u]);
            if !seen[i] {
                seen[i] = true;
                out.push(cands[i] as usize);
            }
        }
        out
    }

    /// Eq. (16) feature perturbation of node `u`'s row, written into `row`.
    fn perturb_row(&self, u: usize, eta: f32, row: &mut [f32], rng: &mut SeedRng) {
        for &dim in &self.nonzero_dims[u] {
            let dim = dim as usize;
            let p = if self.config.feature_aware {
                self.scores.perturb_probability(u, dim, eta)
            } else {
                (eta * 0.5).clamp(0.0, 1.0)
            };
            if rng.bernoulli(p) {
                let magnitude = 2.0 * rng.uniform() - 1.0;
                row[dim] += magnitude * row[dim];
            }
        }
    }

    /// The literal Alg. 3 per-node view: grow `v`'s view `L` hops, sampling
    /// each frontier node's neighbours by edge score, then perturb features.
    pub fn sample_ego_view(&self, v: usize, tau: f32, eta: f32, rng: &mut SeedRng) -> EgoView {
        let mut local_of = std::collections::HashMap::new();
        let mut nodes = vec![v];
        local_of.insert(v, 0usize);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut frontier = vec![v];
        for _hop in 0..self.config.layers {
            let mut next = Vec::new();
            for &u in &frontier {
                let lu = local_of[&u];
                for w in self.sample_neighbors(u, tau, rng) {
                    let lw = *local_of.entry(w).or_insert_with(|| {
                        nodes.push(w);
                        next.push(w);
                        nodes.len() - 1
                    });
                    edges.push((lu, lw));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        let graph = CsrGraph::from_edges(nodes.len(), &edges);
        let mut features = self.x.select_rows(&nodes);
        for (local, &global) in nodes.iter().enumerate() {
            self.perturb_row(global, eta, features.row_mut(local), rng);
        }
        EgoView {
            graph,
            nodes,
            center: 0,
            features,
        }
    }

    /// The batched training form: one full-graph positive view. Structure is
    /// resampled for every node by edge score; features are perturbed by
    /// Eq. (16).
    pub fn sample_global_view(&self, tau: f32, eta: f32, rng: &mut SeedRng) -> (CsrGraph, Matrix) {
        let n = self.graph.num_nodes();
        let mut node_rngs: Vec<SeedRng> = (0..n).map(|v| rng.fork(&format!("gv{v}"))).collect();
        let per_node: Vec<Vec<(usize, usize)>> = (0..n)
            .into_par_iter()
            .zip(node_rngs.par_iter_mut())
            .map(|(u, local_rng)| {
                self.sample_neighbors(u, tau, local_rng)
                    .into_iter()
                    .map(|w| (u, w))
                    .collect()
            })
            .collect();
        let edges: Vec<(usize, usize)> = per_node.into_iter().flatten().collect();
        let graph = CsrGraph::from_edges(n, &edges);
        let mut features = self.x.clone();
        let mut feat_rng = rng.fork("features");
        for u in 0..n {
            self.perturb_row(u, eta, features.row_mut(u), &mut feat_rng);
        }
        (graph, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_graph::generators;

    fn setup(seed: u64) -> (CsrGraph, Matrix, ViewGenerator) {
        let mut rng = SeedRng::new(seed);
        let labels: Vec<usize> = (0..80).map(|v| v / 40).collect();
        let g = generators::dc_sbm(&labels, 2, 6.0, 0.9, &vec![1.0; 80], &mut rng);
        let mut x = Matrix::zeros(80, 6);
        for (v, &label) in labels.iter().enumerate() {
            x.set(v, label, 1.0);
            x.set(v, 2 + rng.below(4), 1.0);
        }
        let gen = ViewGenerator::new(&g, &x, ViewConfig::default(), &mut rng);
        (g, x, gen)
    }

    #[test]
    fn ego_view_contains_center_and_valid_graph() {
        let (_, _, gen) = setup(0);
        let mut rng = SeedRng::new(1);
        for v in [0usize, 13, 50] {
            let view = gen.sample_ego_view(v, 1.0, 0.6, &mut rng);
            assert_eq!(view.nodes[view.center], v);
            assert_eq!(view.graph.num_nodes(), view.nodes.len());
            assert_eq!(view.features.rows(), view.nodes.len());
            view.graph.validate().unwrap();
            // All nodes distinct.
            let set: std::collections::HashSet<_> = view.nodes.iter().collect();
            assert_eq!(set.len(), view.nodes.len());
        }
    }

    #[test]
    fn two_views_are_diverse() {
        let (_, _, gen) = setup(2);
        let mut rng = SeedRng::new(3);
        let a = gen.sample_ego_view(5, 1.0, 0.8, &mut rng);
        let b = gen.sample_ego_view(5, 1.0, 0.8, &mut rng);
        // Overwhelmingly likely to differ in structure or features.
        assert!(a.nodes != b.nodes || a.features != b.features);
    }

    #[test]
    fn tau_zero_still_draws_minimum() {
        let (_, _, gen) = setup(4);
        let mut rng = SeedRng::new(5);
        let view = gen.sample_ego_view(3, 0.0, 0.0, &mut rng);
        // One draw per frontier node minimum, so the view can grow a little.
        assert!(!view.nodes.is_empty());
    }

    #[test]
    fn global_view_preserves_node_count_and_scale() {
        let (g, _, gen) = setup(6);
        let mut rng = SeedRng::new(7);
        let (vg, vx) = gen.sample_global_view(1.0, 0.6, &mut rng);
        assert_eq!(vg.num_nodes(), g.num_nodes());
        assert_eq!(vx.rows(), g.num_nodes());
        // Edge count in the same ballpark as the original at τ=1.
        let ratio = vg.num_edges() as f64 / g.num_edges() as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "edge ratio {ratio}");
        vg.validate().unwrap();
    }

    #[test]
    fn higher_tau_yields_more_edges() {
        let (_, _, gen) = setup(8);
        let (lo, _) = gen.sample_global_view(0.4, 0.0, &mut SeedRng::new(9));
        let (hi, _) = gen.sample_global_view(1.4, 0.0, &mut SeedRng::new(9));
        assert!(hi.num_edges() > lo.num_edges());
    }

    #[test]
    fn eta_zero_leaves_features_untouched() {
        let (_, x, gen) = setup(10);
        let (_, vx) = gen.sample_global_view(1.0, 0.0, &mut SeedRng::new(11));
        assert_eq!(vx, x);
    }

    #[test]
    fn perturbation_touches_only_nonzero_entries() {
        let (_, x, gen) = setup(12);
        let (_, vx) = gen.sample_global_view(1.0, 1.4, &mut SeedRng::new(13));
        for v in 0..x.rows() {
            for d in 0..x.cols() {
                if x.get(v, d) == 0.0 {
                    assert_eq!(vx.get(v, d), 0.0, "zero entry moved at ({v},{d})");
                } else {
                    // Multiplicative perturbation keeps entries in [0, 2x].
                    assert!(vx.get(v, d) >= -1e-6 && vx.get(v, d) <= 2.0 * x.get(v, d) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn global_views_differ_between_draws() {
        let (_, _, gen) = setup(14);
        let mut rng = SeedRng::new(15);
        let (a, ax) = gen.sample_global_view(0.8, 0.8, &mut rng);
        let (b, bx) = gen.sample_global_view(0.8, 0.8, &mut rng);
        assert!(a != b || ax != bx);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, _, gen) = setup(16);
        let (a, ax) = gen.sample_global_view(0.8, 0.8, &mut SeedRng::new(17));
        let (b, bx) = gen.sample_global_view(0.8, 0.8, &mut SeedRng::new(17));
        assert_eq!(a, b);
        assert_eq!(ax, bx);
    }
}
