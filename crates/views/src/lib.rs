//! The E²GCL locality-preserving view generator (paper §IV).
//!
//! * [`ops`] — the full graph-augmentation operation library (edge
//!   deletion/addition, feature masking/perturbation/dropping, node
//!   dropping/addition, subgraph sampling) and the constructive Prop. 1
//!   reduction of every operation to the three *general* operations;
//! * [`scores`] — the §IV-C edge score `w^e` (centrality + similarity) and
//!   feature score `w^f` (frequency × centrality), plus the Eq. (16)
//!   perturbation probabilities;
//! * [`sampler`] — Algorithm 3: edge-aware and feature-aware sampling of
//!   positive views, both the literal per-node ego form and the batched
//!   full-graph form used for training;
//! * [`uniform`] — uniform augmentations (the `E²GCL\F\S` ablations and the
//!   GRACE/GCA-style corruption used by the baselines);
//! * [`objective`] — the Eq. (15) view-generation objective, used to verify
//!   that score-aware sampling preserves locality better than uniform.

pub mod objective;
pub mod ops;
pub mod sampler;
pub mod scores;
pub mod uniform;

pub use sampler::{ViewConfig, ViewGenerator};
pub use scores::GraphScores;
