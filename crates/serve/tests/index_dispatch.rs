//! Dispatch-path invariance of IVF index behaviour (DESIGN.md §16).
//!
//! The kernel-dispatch PR routes the re-rank `lane_dot`/`lane_dot4` calls
//! in `index.rs`/`store.rs` through the runtime dispatcher. Scores are
//! *not* bit-identical across dispatch paths (each path has its own
//! reduction contract), but the serving behaviour that callers observe
//! must be: this test builds the same IVF index and runs the same queries
//! under a forced-scalar selection (`E2GCL_KERNEL_CONFIG=scalar`
//! equivalent, via `dispatch::with_selection`) and under the AVX2
//! selection, and asserts
//!
//! 1. recall@10 against brute force is identical,
//! 2. every query returns the same hit ids in the same order, and
//! 3. exact score ties (planted duplicate rows) break by ascending node
//!    id on both paths.
//!
//! Skipped (vacuously green) on hosts without AVX2+FMA, where only one
//! path exists.

use e2gcl_linalg::{dispatch, Matrix, SeedRng, Selection};
use e2gcl_serve::{EmbeddingStore, IvfConfig, IvfIndex};

/// How many leading rows get two extra exact duplicates planted.
const DUPES: usize = 16;
const ROWS: usize = 3000;
const DIM: usize = 16;

/// Clustered synthetic embeddings (as in `index_determinism.rs`), with
/// rows `0..DUPES` copied verbatim to rows `1000..1000+DUPES` and
/// `2000..2000+DUPES`. Duplicates score exactly equal against any query,
/// forcing the tie-break (ascending node id) to decide their order.
fn clustered_store_with_ties(seed: u64) -> EmbeddingStore {
    let clusters = 24;
    let mut rng = SeedRng::new(seed);
    let mut centers = Matrix::zeros(clusters, DIM);
    for v in centers.as_mut_slice() {
        *v = rng.normal();
    }
    let mut m = Matrix::zeros(ROWS, DIM);
    for r in 0..ROWS {
        let c = rng.below(clusters);
        for (d, x) in m.row_mut(r).iter_mut().enumerate() {
            *x = centers.get(c, d) + 0.2 * rng.normal();
        }
    }
    for i in 0..DUPES {
        let src: Vec<f32> = m.row(i).to_vec();
        m.row_mut(1000 + i).copy_from_slice(&src);
        m.row_mut(2000 + i).copy_from_slice(&src);
    }
    EmbeddingStore::new(m)
}

struct PathRun {
    recall: f64,
    /// Per-query hit ids, in returned order.
    hits: Vec<Vec<usize>>,
}

/// Builds the index and runs every probe query under the *current*
/// dispatch selection. Everything stays on the calling thread up to the
/// kernels' own fan-out, so `with_selection` governs the whole run.
fn run_under_current_selection() -> PathRun {
    let store = clustered_store_with_ties(11);
    let index = IvfIndex::build(
        &store,
        IvfConfig {
            nlist: 48,
            nprobe: 8,
            train_sample: 2048,
            kmeans_iters: 5,
            seed: 3,
        },
    )
    .expect("index build");
    // Duplicated rows first (guaranteed ties), then a spread of others.
    let query_nodes: Vec<usize> = (0..DUPES).chain((0..40).map(|i| 17 + i * 71)).collect();
    let recall = index
        .measure_recall(&store, &query_nodes, 10)
        .expect("recall");
    let hits = query_nodes
        .iter()
        .map(|&n| {
            let q = store.embedding(n).expect("row").to_vec();
            index
                .search(&store, &q, 10)
                .expect("search")
                .into_iter()
                .map(|(id, _)| id)
                .collect()
        })
        .collect();
    PathRun { recall, hits }
}

#[test]
fn ivf_behaviour_invariant_across_dispatch_paths() {
    if !dispatch::avx2_available() {
        eprintln!("skipping: host lacks AVX2+FMA, only the scalar path exists");
        return;
    }
    let scalar = dispatch::with_selection(Selection::SCALAR, run_under_current_selection);
    let avx2 = dispatch::with_selection(Selection::AVX2, run_under_current_selection);

    assert_eq!(
        scalar.recall.to_bits(),
        avx2.recall.to_bits(),
        "recall@10 differs across dispatch paths: scalar {} vs avx2 {}",
        scalar.recall,
        avx2.recall
    );
    for (qi, (s, a)) in scalar.hits.iter().zip(&avx2.hits).enumerate() {
        assert_eq!(
            s, a,
            "query #{qi}: hit ids / order differ across dispatch paths"
        );
    }
    // Tie-break contract: for each planted duplicate triple, whichever of
    // the three ids made it into the top-10 must appear in ascending order
    // (equal scores break by ascending node id), on both paths.
    for (path, run) in [("scalar", &scalar), ("avx2", &avx2)] {
        for (i, hits) in run.hits.iter().take(DUPES).enumerate() {
            let triple = [i, 1000 + i, 2000 + i];
            let present: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|id| triple.contains(id))
                .collect();
            assert!(
                present.len() >= 2,
                "[{path}] query #{i}: expected the duplicate triple in top-10, got {hits:?}"
            );
            let mut sorted = present.clone();
            sorted.sort_unstable();
            assert_eq!(
                present, sorted,
                "[{path}] query #{i}: tied duplicates not in ascending node-id order"
            );
        }
    }
}
