//! End-to-end serving tests: pretrain → artifact → reload → serve.
//!
//! Proves the ISSUE acceptance path: a trained model saved to disk and
//! loaded back serves embeddings **bitwise identical** to the in-memory
//! `PretrainResult`, and the inductive ego-subgraph forward reproduces the
//! stored full-graph rows for the default 2-layer encoder.

use e2gcl::prelude::*;
use e2gcl_nn::probe::ProbeConfig;
use e2gcl_serve::{
    Artifact, ArtifactMeta, BatchServer, EmbeddingStore, InductiveEngine, Request, Response,
};

const SCALE: f64 = 0.05;
const SEED: u64 = 3;

fn trained() -> (Artifact, NodeDataset) {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), SCALE, SEED);
    let cfg = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    let model = E2gclModel::default();
    let out = model
        .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(SEED))
        .expect("pretrain");
    let artifact = Artifact {
        meta: ArtifactMeta {
            model: model.name(),
            dataset: data.name.clone(),
            scale: SCALE,
            seed: SEED,
        },
        config: cfg,
        encoder: out.encoder.expect("E2GCL exposes a frozen encoder"),
        embeddings: out.embeddings,
    };
    (artifact, data)
}

#[test]
fn pretrain_save_load_round_trips_bitwise() {
    let (artifact, _) = trained();
    let path = std::env::temp_dir().join("e2gcl_serving_it_roundtrip.bin");
    artifact.save(&path).expect("save");
    let loaded = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);

    assert_eq!(artifact.meta, loaded.meta);
    assert_eq!(artifact.embeddings.rows(), loaded.embeddings.rows());
    assert_eq!(artifact.embeddings.cols(), loaded.embeddings.cols());
    for (a, b) in artifact
        .embeddings
        .as_slice()
        .iter()
        .zip(loaded.embeddings.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (wa, wb) in artifact
        .encoder
        .params()
        .iter()
        .zip(loaded.encoder.params())
    {
        for (a, b) in wa.as_slice().iter().zip(wb.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // And the reloaded artifact re-serialises to the same bytes.
    assert_eq!(
        artifact.to_bytes().expect("to_bytes"),
        loaded.to_bytes().expect("to_bytes")
    );
}

#[test]
fn inductive_forward_reproduces_stored_embeddings() {
    let (artifact, data) = trained();
    assert_eq!(
        artifact.encoder.receptive_hops(),
        2,
        "default E2GCL encoder should be the 2-layer case the ISSUE names"
    );
    let engine = InductiveEngine::new(
        artifact.encoder.clone(),
        data.graph.clone(),
        data.features.clone(),
    )
    .expect("engine");
    // The stored embeddings are the frozen encoder's full-graph forward, so
    // the ego-subgraph forward must land on the same bits (tolerance 0).
    for node in 0..data.num_nodes() {
        let inductive = engine.embed_node(node).expect("embed");
        let stored = artifact.embeddings.row(node);
        assert_eq!(inductive.len(), stored.len());
        for (a, b) in inductive.iter().zip(stored) {
            assert_eq!(a.to_bits(), b.to_bits(), "node {node} diverges");
        }
    }
}

#[test]
fn batch_server_answers_queries_after_reload() {
    let (artifact, data) = trained();
    let bytes = artifact.to_bytes().expect("to_bytes");
    let artifact = Artifact::from_bytes(&bytes).expect("from_bytes");
    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server");

    let train: Vec<usize> = (0..data.num_nodes()).collect();
    server.store_mut().fit_probe(
        &data.labels,
        &train,
        data.num_classes,
        &ProbeConfig::default(),
        &mut SeedRng::new(SEED),
    );

    let batch = vec![
        Request::TopK { node: 0, k: 5 },
        Request::TopKInductive { node: 1, k: 5 },
        Request::Classify { node: 2 },
        Request::Embedding { node: 3 },
    ];
    let responses = server.serve(&batch);
    assert_eq!(responses.len(), batch.len());
    for (r, resp) in batch.iter().zip(&responses) {
        assert!(resp.is_ok(), "{r:?} failed: {resp:?}");
    }
    match &responses[0] {
        Response::Hits(h) => {
            assert!(!h.is_empty(), "top-k must return hits");
            // A node is its own nearest neighbour under cosine similarity.
            assert_eq!(h[0].0, 0);
        }
        other => panic!("expected hits, got {other:?}"),
    }
    match (&responses[0], &responses[1]) {
        (Response::Hits(stored), Response::Hits(inductive)) => {
            assert_eq!(stored.len(), 5);
            assert_eq!(inductive.len(), 5);
        }
        _ => panic!("expected hits for both top-k queries"),
    }
    match &responses[2] {
        Response::Class(c) => assert!(*c < data.num_classes),
        other => panic!("expected a class, got {other:?}"),
    }

    // Latency accounting saw exactly one batch of this size.
    let report = server.latency_report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].0, batch.len());
    assert_eq!(report[0].1.count, 1);
}

#[test]
fn store_top_k_is_consistent_between_batch_and_single() {
    let (artifact, _) = trained();
    let store = EmbeddingStore::new(artifact.embeddings.clone());
    let queries: Vec<Vec<f32>> = (0..4)
        .map(|v| store.embedding(v).expect("row").to_vec())
        .collect();
    let batched = store.batch_top_k(&queries, 3);
    for (v, result) in batched.into_iter().enumerate() {
        let single = store.top_k(&queries[v], 3).expect("top_k");
        assert_eq!(result.expect("batch top_k"), single);
    }
}
