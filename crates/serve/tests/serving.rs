//! End-to-end serving tests: pretrain → artifact → reload → serve.
//!
//! Proves the ISSUE acceptance path: a trained model saved to disk and
//! loaded back serves embeddings **bitwise identical** to the in-memory
//! `PretrainResult`, and the inductive ego-subgraph forward reproduces the
//! stored full-graph rows for the default 2-layer encoder.

use e2gcl::prelude::*;
use e2gcl_nn::probe::ProbeConfig;
use e2gcl_serve::{
    Artifact, ArtifactMeta, BatchServer, Clock, EmbeddingStore, InductiveEngine, Request, Response,
    ServeFaultPlan,
};

const SCALE: f64 = 0.05;
const SEED: u64 = 3;

fn trained() -> (Artifact, NodeDataset) {
    let data = NodeDataset::generate(&spec("cora-sim").expect("spec"), SCALE, SEED);
    let cfg = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };
    let model = E2gclModel::default();
    let out = model
        .pretrain(&data.graph, &data.features, &cfg, &mut SeedRng::new(SEED))
        .expect("pretrain");
    let artifact = Artifact {
        meta: ArtifactMeta {
            model: model.name(),
            dataset: data.name.clone(),
            scale: SCALE,
            seed: SEED,
        },
        config: cfg,
        encoder: out.encoder.expect("E2GCL exposes a frozen encoder"),
        embeddings: out.embeddings,
    };
    (artifact, data)
}

#[test]
fn pretrain_save_load_round_trips_bitwise() {
    let (artifact, _) = trained();
    let path = std::env::temp_dir().join("e2gcl_serving_it_roundtrip.bin");
    artifact.save(&path).expect("save");
    let loaded = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);

    assert_eq!(artifact.meta, loaded.meta);
    assert_eq!(artifact.embeddings.rows(), loaded.embeddings.rows());
    assert_eq!(artifact.embeddings.cols(), loaded.embeddings.cols());
    for (a, b) in artifact
        .embeddings
        .as_slice()
        .iter()
        .zip(loaded.embeddings.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (wa, wb) in artifact
        .encoder
        .params()
        .iter()
        .zip(loaded.encoder.params())
    {
        for (a, b) in wa.as_slice().iter().zip(wb.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // And the reloaded artifact re-serialises to the same bytes.
    assert_eq!(
        artifact.to_bytes().expect("to_bytes"),
        loaded.to_bytes().expect("to_bytes")
    );
}

#[test]
fn inductive_forward_reproduces_stored_embeddings() {
    let (artifact, data) = trained();
    assert_eq!(
        artifact.encoder.receptive_hops(),
        2,
        "default E2GCL encoder should be the 2-layer case the ISSUE names"
    );
    let engine = InductiveEngine::new(
        artifact.encoder.clone(),
        data.graph.clone(),
        data.features.clone(),
    )
    .expect("engine");
    // The stored embeddings are the frozen encoder's full-graph forward, so
    // the ego-subgraph forward must land on the same bits (tolerance 0).
    for node in 0..data.num_nodes() {
        let inductive = engine.embed_node(node).expect("embed");
        let stored = artifact.embeddings.row(node);
        assert_eq!(inductive.len(), stored.len());
        for (a, b) in inductive.iter().zip(stored) {
            assert_eq!(a.to_bits(), b.to_bits(), "node {node} diverges");
        }
    }
}

#[test]
fn batch_server_answers_queries_after_reload() {
    let (artifact, data) = trained();
    let bytes = artifact.to_bytes().expect("to_bytes");
    let artifact = Artifact::from_bytes(&bytes).expect("from_bytes");
    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server");

    let train: Vec<usize> = (0..data.num_nodes()).collect();
    server.store_mut().fit_probe(
        &data.labels,
        &train,
        data.num_classes,
        &ProbeConfig::default(),
        &mut SeedRng::new(SEED),
    );

    let batch = vec![
        Request::TopK { node: 0, k: 5 },
        Request::TopKInductive { node: 1, k: 5 },
        Request::Classify { node: 2 },
        Request::Embedding { node: 3 },
    ];
    let responses = server.serve(&batch);
    assert_eq!(responses.len(), batch.len());
    for (r, resp) in batch.iter().zip(&responses) {
        assert!(resp.is_ok(), "{r:?} failed: {resp:?}");
    }
    match &responses[0] {
        Response::Hits { hits, degraded } => {
            assert!(!hits.is_empty(), "top-k must return hits");
            assert!(!degraded, "healthy path must not degrade");
            // A node is its own nearest neighbour under cosine similarity.
            assert_eq!(hits[0].0, 0);
        }
        other => panic!("expected hits, got {other:?}"),
    }
    match (&responses[0], &responses[1]) {
        (
            Response::Hits { hits: stored, .. },
            Response::Hits {
                hits: inductive, ..
            },
        ) => {
            assert_eq!(stored.len(), 5);
            assert_eq!(inductive.len(), 5);
        }
        _ => panic!("expected hits for both top-k queries"),
    }
    match &responses[2] {
        Response::Class(c) => assert!(*c < data.num_classes),
        other => panic!("expected a class, got {other:?}"),
    }

    // Latency accounting saw exactly one batch of this size.
    let report = server.latency_report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].0, batch.len());
    assert_eq!(report[0].1.count, 1);
}

/// Acceptance: a persistently failing inductive engine degrades every
/// affected query to the stored-embedding answer — zero query errors, and
/// (for training-graph nodes, whose stored rows *are* the inductive
/// forward) answers identical to the healthy path.
#[test]
fn persistent_inductive_failure_degrades_with_zero_query_errors() {
    let (artifact, data) = trained();
    let plan = ServeFaultPlan {
        only_seed: Some(SEED), // scoped to exactly this artifact
        inductive_fail_every: 1,
        inductive_fail_attempts: 0, // every attempt fails: persistent fault
        ..ServeFaultPlan::default()
    };
    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server")
            .with_clock(Clock::virtual_at(0))
            .with_fault_plan(plan);

    let nodes = [0usize, 1, 2, 3];
    let batch: Vec<Request> = nodes
        .iter()
        .map(|&node| Request::TopKInductive { node, k: 5 })
        .collect();
    let degraded_responses = server.serve(&batch);
    let healthy: Vec<Request> = nodes
        .iter()
        .map(|&node| Request::TopK { node, k: 5 })
        .collect();
    let healthy_responses = server.serve(&healthy);

    for (node, (d, h)) in nodes
        .iter()
        .zip(degraded_responses.iter().zip(&healthy_responses))
    {
        assert!(
            d.is_ok(),
            "node {node}: degraded path must not error: {d:?}"
        );
        assert!(
            d.is_degraded(),
            "node {node}: answer must be marked degraded"
        );
        match (d, h) {
            (Response::Hits { hits: a, .. }, Response::Hits { hits: b, .. }) => {
                assert_eq!(a, b, "node {node}: degraded answer differs from stored")
            }
            other => panic!("expected hits pairs, got {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.failed, 0, "zero query errors under persistent faults");
    assert_eq!(stats.degraded, nodes.len() as u64);
    assert!(
        stats.retries >= nodes.len() as u64,
        "each failure should have been retried before degrading"
    );
}

/// A transient inductive fault (first attempt only) is absorbed by the
/// retry-with-backoff path: full-fidelity answers, nothing degraded.
#[test]
fn transient_inductive_failure_recovers_via_retry() {
    let (artifact, data) = trained();
    let plan = ServeFaultPlan {
        inductive_fail_every: 1,
        inductive_fail_attempts: 1, // attempt 0 fails, retry succeeds
        ..ServeFaultPlan::default()
    };
    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server")
            .with_clock(Clock::virtual_at(0))
            .with_fault_plan(plan);
    let before_us = server.clock().now_us();
    let responses = server.serve(&[Request::TopKInductive { node: 2, k: 5 }]);
    assert!(
        responses[0].is_ok() && !responses[0].is_degraded(),
        "{responses:?}"
    );
    let stats = server.stats();
    assert_eq!((stats.retries, stats.degraded, stats.failed), (1, 0, 0));
    assert!(
        server.clock().now_us() > before_us,
        "retry must pay its backoff on the clock"
    );
}

/// A plan scoped to a different training seed never fires.
#[test]
fn fault_plan_for_another_seed_is_inert() {
    let (artifact, data) = trained();
    let plan = ServeFaultPlan {
        only_seed: Some(SEED + 1),
        inductive_fail_every: 1,
        inductive_fail_attempts: 0,
        slow_every: 1,
        slow_us: 1_000_000,
    };
    let mut server =
        BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
            .expect("server")
            .with_clock(Clock::virtual_at(0))
            .with_fault_plan(plan);
    let responses = server.serve(&[Request::TopKInductive { node: 0, k: 3 }]);
    assert!(responses[0].is_ok() && !responses[0].is_degraded());
    let stats = server.stats();
    assert_eq!((stats.retries, stats.degraded, stats.failed), (0, 0, 0));
    assert_eq!(server.clock().now_us(), 0, "no synthetic stall may fire");
}

#[test]
fn store_top_k_is_consistent_between_batch_and_single() {
    let (artifact, _) = trained();
    let store = EmbeddingStore::new(artifact.embeddings.clone());
    let queries: Vec<Vec<f32>> = (0..4)
        .map(|v| store.embedding(v).expect("row").to_vec())
        .collect();
    let batched = store.batch_top_k(&queries, 3);
    for (v, result) in batched.into_iter().enumerate() {
        let single = store.top_k(&queries[v], 3).expect("top_k");
        assert_eq!(result.expect("batch top_k"), single);
    }
}
