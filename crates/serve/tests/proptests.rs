//! Property tests for the artifact format.
//!
//! Two invariants the serving layer depends on:
//! 1. save → load → save is **byte-identical** for arbitrary artifacts, so
//!    checksums and caches keyed on the file stay stable across rewrites.
//! 2. Hostile inputs — truncations, bit flips, wrong versions, random
//!    garbage — always produce a typed [`ArtifactError`], never a panic.

use e2gcl::config::TrainConfig;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_nn::{FrozenEncoder, GcnEncoder, SageEncoder, SgcEncoder};
use e2gcl_serve::{Artifact, ArtifactError, ArtifactMeta};
use proptest::prelude::*;

/// Builds a deterministic artifact with one of the three encoder kinds and
/// randomized shapes.
fn artifact_from(seed: u64, kind: u8, nodes: usize, hidden: usize, out: usize) -> Artifact {
    let mut rng = SeedRng::new(seed);
    let input = 5;
    let encoder = match kind % 3 {
        0 => FrozenEncoder::Gcn(GcnEncoder::new(&[input, hidden, out], &mut rng)),
        1 => FrozenEncoder::Sgc(SgcEncoder::new(input, out, 2, &mut rng)),
        _ => FrozenEncoder::Sage(SageEncoder::new(&[input, hidden, out], &mut rng)),
    };
    let mut embeddings = Matrix::zeros(nodes, out);
    for v in embeddings.as_mut_slice() {
        *v = rng.normal();
    }
    Artifact {
        meta: ArtifactMeta {
            model: format!("model-{seed}"),
            dataset: "cora-sim".to_string(),
            scale: 0.05 + (seed % 13) as f64 * 0.07,
            seed,
        },
        config: TrainConfig::default(),
        encoder,
        embeddings,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load → save round-trips byte-identically for every encoder
    /// kind and shape, and the reloaded metadata/weights match exactly.
    #[test]
    fn save_load_save_is_byte_identical(
        seed in any::<u64>(),
        kind in 0u8..3,
        nodes in 1usize..12,
        hidden in 1usize..8,
        out in 1usize..6,
    ) {
        let a = artifact_from(seed, kind, nodes, hidden, out);
        let bytes = a.to_bytes().unwrap();
        let b = Artifact::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&a.meta, &b.meta);
        prop_assert_eq!(a.encoder.kind(), b.encoder.kind());
        prop_assert_eq!(a.encoder.params(), b.encoder.params());
        for (x, y) in a.embeddings.as_slice().iter().zip(b.embeddings.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(bytes, b.to_bytes().unwrap());
    }

    /// Any truncation fails with a typed error (and never panics).
    #[test]
    fn truncations_fail_typed(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let a = artifact_from(seed, (seed % 3) as u8, 6, 5, 3);
        let bytes = a.to_bytes().unwrap();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = Artifact::from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
            ),
            "cut at {cut}/{} gave {err}",
            bytes.len()
        );
    }

    /// Any single flipped bit fails with a typed error — in the payload it
    /// is always caught by the checksum.
    #[test]
    fn bit_flips_fail_typed(seed in any::<u64>(), pos in any::<u64>(), bit in 0u8..8) {
        let a = artifact_from(seed, (seed % 3) as u8, 6, 5, 3);
        let mut bytes = a.to_bytes().unwrap();
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let result = Artifact::from_bytes(&bytes);
        prop_assert!(result.is_err(), "flip at byte {pos} bit {bit} was accepted");
        if pos >= 28 {
            // Payload flips are always a checksum mismatch.
            prop_assert!(matches!(
                result.unwrap_err(),
                ArtifactError::ChecksumMismatch { .. }
            ));
        }
    }

    /// Every version tag other than the current one is rejected as such.
    #[test]
    fn wrong_versions_fail_typed(v in any::<u32>()) {
        prop_assume!(v != e2gcl_serve::artifact::VERSION);
        let a = artifact_from(1, 0, 4, 3, 2);
        let mut bytes = a.to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&v.to_le_bytes());
        prop_assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(got)) if got == v
        ));
    }

    /// Random garbage never panics; it fails with some typed error.
    #[test]
    fn random_bytes_never_panic(data in prop::collection::vec((0usize..256).prop_map(|v| v as u8), 0..256)) {
        prop_assert!(Artifact::from_bytes(&data).is_err());
    }

    /// Garbage that keeps a valid header (magic/version/length/checksum all
    /// consistent) still fails structurally — with Corrupt or Truncated,
    /// never a panic.
    #[test]
    fn valid_header_garbage_payload_is_typed(data in prop::collection::vec((0usize..256).prop_map(|v| v as u8), 0..128)) {
        let mut bytes = Vec::with_capacity(28 + data.len());
        bytes.extend_from_slice(b"E2GCLART");
        bytes.extend_from_slice(&e2gcl_serve::artifact::VERSION.to_le_bytes());
        bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&e2gcl_serve::artifact::fnv1a64(&data).to_le_bytes());
        bytes.extend_from_slice(&data);
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        prop_assert!(matches!(
            err,
            ArtifactError::Corrupt(_) | ArtifactError::Truncated { .. }
        ));
    }
}

// ---------------------------------------------------------------------------
// LatencyHistogram: percentile ordering must hold for *any* sample set, and
// the empty histogram must read as all-zero rather than panic.
// ---------------------------------------------------------------------------

use e2gcl_serve::LatencyHistogram;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50 ≤ p95 ≤ p99 ≤ max for arbitrary latency samples, and every
    /// percentile lies inside the observed range.
    #[test]
    fn histogram_percentiles_are_monotone(samples in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &us in &samples {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
        prop_assert!(s.p95_us <= s.p99_us, "p95 {} > p99 {}", s.p95_us, s.p99_us);
        prop_assert!(s.p99_us <= s.max_us, "p99 {} > max {}", s.p99_us, s.max_us);
        let lo = *samples.iter().min().unwrap() as f64;
        let hi = *samples.iter().max().unwrap() as f64;
        prop_assert!(s.p50_us >= lo && s.max_us <= hi);
        prop_assert!(s.mean_us >= lo && s.mean_us <= hi);
    }

    /// Arbitrary percentile requests (including out-of-range ones, which
    /// clamp) are ordered and never panic.
    #[test]
    fn histogram_percentile_pairs_are_ordered(
        samples in prop::collection::vec(0u64..1_000_000, 1..100),
        a in -50.0f64..150.0,
        b in -50.0f64..150.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &us in &samples {
            h.record(Duration::from_micros(us));
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.percentile(lo) <= h.percentile(hi));
    }
}

#[test]
fn empty_histogram_summary_is_all_zero() {
    let h = LatencyHistogram::new();
    let s = h.summary();
    assert_eq!(s.count, 0);
    assert_eq!(
        (s.p50_us, s.p95_us, s.p99_us, s.mean_us, s.max_us),
        (0.0, 0.0, 0.0, 0.0, 0.0)
    );
    assert_eq!(h.percentile(99.9), Duration::ZERO);
}

// ---------------------------------------------------------------------------
// IVF index format: hostile bytes are typed errors, never panics — the same
// guarantee the artifact format gives, for the new E2GCLIVF framing.
// ---------------------------------------------------------------------------

use e2gcl_serve::IvfIndex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random garbage never panics the index parser.
    #[test]
    fn random_index_bytes_never_panic(data in prop::collection::vec((0usize..256).prop_map(|v| v as u8), 0..256)) {
        prop_assert!(IvfIndex::from_bytes(&data).is_err());
    }

    /// Garbage with a consistent E2GCLIVF header still fails typed.
    #[test]
    fn valid_index_header_garbage_payload_is_typed(data in prop::collection::vec((0usize..256).prop_map(|v| v as u8), 0..128)) {
        let mut bytes = Vec::with_capacity(28 + data.len());
        bytes.extend_from_slice(b"E2GCLIVF");
        bytes.extend_from_slice(&e2gcl_serve::index::INDEX_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&e2gcl_serve::artifact::fnv1a64(&data).to_le_bytes());
        bytes.extend_from_slice(&data);
        let err = IvfIndex::from_bytes(&bytes).unwrap_err();
        prop_assert!(matches!(
            err,
            ArtifactError::Corrupt(_) | ArtifactError::Truncated { .. }
        ));
    }
}
