//! Thread-count invariance of IVF index construction.
//!
//! The index determinism contract (DESIGN.md §14) extends the PR 4 kernel
//! contract (§11) to a whole subsystem: `IvfIndex::build` must produce
//! **bitwise identical serialized bytes** regardless of run or
//! `RAYON_NUM_THREADS`. The vendored rayon stand-in reads that variable
//! once per process, so each thread setting needs its own process: the
//! test re-execs its own binary as a child per setting, each child prints
//! an FNV-1a fingerprint of the index bytes, and the parent asserts all
//! fingerprints match.

use e2gcl_linalg::hash::Fnv1a64;
use e2gcl_linalg::{Matrix, SeedRng};
use e2gcl_serve::{EmbeddingStore, IvfConfig, IvfIndex};
use std::process::Command;

const CHILD_ENV: &str = "E2GCL_INDEX_DETERMINISM_CHILD";

/// Clustered synthetic embeddings: community centers + gaussian noise,
/// the shape real GNN embeddings have. Big enough (3000 x 16) that the
/// chunked GEMM assignment path actually fans out over the pool.
fn clustered_store(seed: u64) -> EmbeddingStore {
    let rows = 3000;
    let dim = 16;
    let clusters = 24;
    let mut rng = SeedRng::new(seed);
    let mut centers = Matrix::zeros(clusters, dim);
    for v in centers.as_mut_slice() {
        *v = rng.normal();
    }
    let mut m = Matrix::zeros(rows, dim);
    for r in 0..rows {
        let c = rng.below(clusters);
        for (d, x) in m.row_mut(r).iter_mut().enumerate() {
            *x = centers.get(c, d) + 0.2 * rng.normal();
        }
    }
    EmbeddingStore::new(m)
}

fn index_fingerprint() -> u64 {
    let store = clustered_store(11);
    let index = IvfIndex::build(
        &store,
        IvfConfig {
            nlist: 48,
            nprobe: 8,
            train_sample: 2048,
            kmeans_iters: 5,
            seed: 3,
        },
    )
    .expect("index build");
    let mut h = Fnv1a64::new();
    h.write(&index.to_bytes());
    h.finish()
}

#[test]
fn index_build_bitwise_invariant_across_thread_counts() {
    if std::env::var(CHILD_ENV).is_ok() {
        println!("FP:{:016x}", index_fingerprint());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut fps = Vec::new();
    for threads in ["1", "4"] {
        let out = Command::new(&exe)
            .arg("index_build_bitwise_invariant_across_thread_counts")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child with {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // With --nocapture the marker can share a line with libtest output.
        let at = stdout
            .find("FP:")
            .unwrap_or_else(|| panic!("no FP marker in child output: {stdout}"));
        fps.push(stdout[at + 3..at + 19].to_string());
    }
    assert_eq!(
        fps[0], fps[1],
        "index bytes differ between RAYON_NUM_THREADS=1 and 4"
    );
    // The in-process pool (whatever its size) must agree too, and a second
    // same-process build must reproduce the first.
    let here = format!("{:016x}", index_fingerprint());
    assert_eq!(fps[0], here, "parent fingerprint differs from children");
    let again = format!("{:016x}", index_fingerprint());
    assert_eq!(here, again, "same-process rebuild differs");
}
