//! Model persistence and embedding serving for E²GCL (`e2gcl-serve`).
//!
//! The GCL protocol the paper follows (§V, Alg. 1) is pretrain-once /
//! probe-many: a frozen encoder is reused across every downstream
//! evaluation — exactly the shape of a serving workload. This crate is the
//! first subsystem on the inference side of the stack:
//!
//! * [`artifact`] — versioned, checksummed binary artifacts holding a
//!   trained encoder's weights, the `TrainConfig`, and the final embedding
//!   matrix; save → load round-trips bitwise.
//! * [`store`] — [`EmbeddingStore`]: batched top-k cosine similarity and
//!   linear-probe classification over the stored embeddings.
//! * [`inductive`] — [`InductiveEngine`]: embeds nodes (including nodes
//!   unseen at training time) by running the frozen encoder over an L-hop
//!   ego subgraph, with an LRU cache and pooled scratch workspaces. The
//!   Thm. 1 relaxation makes this exact, not approximate.
//! * [`server`] — [`BatchServer`]: a multi-threaded request loop with
//!   per-batch-size latency histograms (p50/p95/p99).
//!
//! Everything fallible returns a typed error ([`ArtifactError`] /
//! [`ServeError`]); production paths never panic on untrusted input.

pub mod artifact;
pub mod histogram;
pub mod index;
pub mod inductive;
pub mod loadgen;
pub mod lru;
pub mod runtime;
pub mod scheduler;
pub mod server;
pub mod store;

pub use artifact::{Artifact, ArtifactError, ArtifactMeta};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use index::{IvfConfig, IvfIndex};
pub use inductive::InductiveEngine;
pub use loadgen::{find_max_sustainable, run_load, LoadGenOptions, LoadGenReport, SustainedReport};
pub use lru::LruCache;
pub use runtime::{Clock, ErrorKind, RejectCause, RuntimeConfig, ServeFaultPlan, ShedStats};
pub use scheduler::{Completed, MicroBatcher, SchedulerConfig, SchedulerStats};
pub use server::{
    run_latency_bench, run_overload_bench, BatchBenchReport, BatchServer, BenchOptions,
    OverloadOptions, OverloadReport, Request, Response,
};
pub use store::{EmbeddingStore, Hit};

use std::fmt;

/// Typed serving failure.
#[derive(Debug)]
pub enum ServeError {
    /// Artifact I/O or decode failure.
    Artifact(ArtifactError),
    /// A node id outside the stored graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes actually stored.
        num_nodes: usize,
    },
    /// A query vector whose length does not match the embedding dimension.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality received.
        actual: usize,
    },
    /// A classification query before any probe was fitted.
    NoProbe,
    /// An inductive query against a server built without a graph.
    NoInductiveEngine,
    /// A deterministic failure injected by the active [`ServeFaultPlan`]
    /// (tests/benches only; never constructed on clean production paths).
    FaultInjected {
        /// Sequence number of the query the plan selected.
        seq: u64,
    },
    /// An [`IvfIndex`] used against a store it was not built over (shape
    /// or content checksum drift), or an invalid index build request.
    IndexMismatch {
        /// What disagreed.
        reason: String,
    },
}

impl ServeError {
    /// The structured category of this failure.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ServeError::Artifact(_) => ErrorKind::Artifact,
            ServeError::NodeOutOfRange { .. } => ErrorKind::NodeOutOfRange,
            ServeError::DimensionMismatch { .. } => ErrorKind::DimensionMismatch,
            ServeError::NoProbe => ErrorKind::NoProbe,
            ServeError::NoInductiveEngine => ErrorKind::NoInductiveEngine,
            ServeError::FaultInjected { .. } => ErrorKind::FaultInjected,
            ServeError::IndexMismatch { .. } => ErrorKind::IndexMismatch,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Artifact(e) => write!(f, "{e}"),
            ServeError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range (store holds {num_nodes} nodes)"
                )
            }
            ServeError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "query dimension {actual} does not match embedding dimension {expected}"
                )
            }
            ServeError::NoProbe => write!(f, "no linear probe fitted (call fit_probe first)"),
            ServeError::NoInductiveEngine => {
                write!(
                    f,
                    "server has no inductive engine (built without graph/features)"
                )
            }
            ServeError::FaultInjected { seq } => {
                write!(f, "injected fault (fault plan selected query #{seq})")
            }
            ServeError::IndexMismatch { reason } => {
                write!(f, "index mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}
