//! Closed-loop load generator for the serve path.
//!
//! Drives a deterministic mixed stored/inductive top-k request stream at a
//! target QPS through a [`MicroBatcher`] + [`BatchServer`] pair, and
//! reports what the ISSUE's acceptance gate needs: per-request latency
//! percentiles (arrival → completion, so queueing and coalescing delay
//! are *in* the number) and the achieved throughput. A ladder helper
//! ([`find_max_sustainable`]) walks target QPS upward until the p99
//! budget or the throughput itself gives way, yielding the max
//! sustainable rate for `BENCH_serve.json`.
//!
//! Arrivals are an ideal open-loop schedule — request `i` is *due* at
//! `i / target_qps` seconds — but injection is closed-loop: the generator
//! only advances the clock when the server is idle, so a slow server
//! makes arrivals pile up into bigger coalesced batches instead of being
//! silently dropped. Latency is measured from the *scheduled* arrival,
//! which charges the server for any backlog it causes (the honest,
//! coordinated-omission-free convention).
//!
//! Everything reads the server's [`Clock`](crate::Clock): on a wall clock
//! this is a real benchmark; on a virtual clock the whole run — arrivals,
//! batch deadlines, completions — replays bit-identically, which is how
//! the tests pin the generator's behaviour.

use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::scheduler::{MicroBatcher, SchedulerConfig};
use crate::server::{BatchServer, Request, Response};
use e2gcl_linalg::SeedRng;
use serde::Serialize;
use std::time::Duration;

/// Knobs for one [`run_load`] trial.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LoadGenOptions {
    /// Offered arrival rate, requests per second.
    pub target_qps: f64,
    /// Requests in the trial.
    pub requests: usize,
    /// `k` of the top-k queries.
    pub k: usize,
    /// Every `inductive_every`-th request goes through the inductive path
    /// (0 → stored-only traffic).
    pub inductive_every: usize,
    /// Seed for the query-node stream.
    pub seed: u64,
}

impl Default for LoadGenOptions {
    fn default() -> Self {
        Self {
            target_qps: 1_000.0,
            requests: 2_000,
            k: 10,
            inductive_every: 0,
            seed: 0,
        }
    }
}

/// What one [`run_load`] trial observed.
#[derive(Clone, Debug, Serialize)]
pub struct LoadGenReport {
    /// Offered rate, requests per second.
    pub target_qps: f64,
    /// Requests offered (= [`LoadGenOptions::requests`]).
    pub offered: usize,
    /// Requests answered successfully.
    pub answered: usize,
    /// Requests shed by admission/deadline policy.
    pub rejected: usize,
    /// Requests that returned a typed failure.
    pub failed: usize,
    /// Completed requests per second of clock time, offered → drained.
    pub achieved_qps: f64,
    /// Batches the micro-batcher flushed.
    pub batches: u64,
    /// Mean requests per flushed batch.
    pub mean_batch: f64,
    /// Per-request latency (µs), scheduled arrival → batch completion.
    pub latency: LatencySummary,
}

impl LoadGenReport {
    /// True when the trial held up under its offered load: every request
    /// answered, throughput within `qps_slack` of target, p99 within
    /// budget.
    pub fn sustained(&self, p99_budget_us: f64, qps_slack: f64) -> bool {
        self.failed == 0
            && self.rejected == 0
            && self.answered == self.offered
            && self.achieved_qps >= self.target_qps * qps_slack
            && self.latency.p99_us <= p99_budget_us
    }
}

/// Sleeps (wall) or advances (virtual) the server clock up to `target_us`.
fn wait_until(server: &BatchServer, target_us: u64) {
    let now = server.clock().now_us();
    if target_us > now {
        server.clock().advance_us(target_us - now);
    }
}

/// Runs one closed-loop trial of `opts` against `server` through
/// `batcher` (module docs). The batcher should be fresh; leftover pending
/// requests from an earlier run would pollute the latency accounting.
pub fn run_load(
    server: &mut BatchServer,
    batcher: &mut MicroBatcher,
    opts: &LoadGenOptions,
) -> LoadGenReport {
    let n = server.store().len().max(1);
    let mut rng = SeedRng::new(opts.seed);
    let interval_us = if opts.target_qps > 0.0 {
        1e6 / opts.target_qps
    } else {
        0.0
    };
    let due = |i: usize| (i as f64 * interval_us) as u64;

    let batches_before = batcher.stats().batches;
    let flushed_before = batcher.stats().flushed;
    let mut hist = LatencyHistogram::new();
    let mut answered = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let t0 = server.clock().now_us();
    let mut next = 0usize;
    let mut last_completion_us = t0;

    let mut account =
        |done: Vec<crate::scheduler::Completed>, hist: &mut LatencyHistogram, last: &mut u64| {
            for c in done {
                match &c.response {
                    Response::Rejected(_) => rejected += 1,
                    Response::Failed { .. } => failed += 1,
                    _ => answered += 1,
                }
                hist.record(Duration::from_micros(
                    c.completed_us.saturating_sub(c.arrival_us),
                ));
                *last = (*last).max(c.completed_us);
            }
        };

    loop {
        let now = server.clock().now_us();
        // Inject every arrival that is due by now, stamped with its
        // *scheduled* time so backlog counts against latency.
        while next < opts.requests && t0 + due(next) <= now {
            let node = rng.below(n);
            let request = if opts.inductive_every > 0 && next.is_multiple_of(opts.inductive_every) {
                Request::TopKInductive { node, k: opts.k }
            } else {
                Request::TopK { node, k: opts.k }
            };
            batcher.submit(request, t0 + due(next));
            next += 1;
        }
        if batcher.ready(now) {
            let done = batcher.flush(server);
            account(done, &mut hist, &mut last_completion_us);
            continue;
        }
        if next >= opts.requests {
            // Stream exhausted: wait out the last window, then drain.
            match batcher.next_deadline_us() {
                Some(deadline) => {
                    wait_until(server, deadline);
                    let done = batcher.flush(server);
                    account(done, &mut hist, &mut last_completion_us);
                }
                None => break,
            }
            continue;
        }
        // Idle: sleep/advance to the next event — the next scheduled
        // arrival or the pending batch's deadline, whichever is sooner.
        let next_arrival = t0 + due(next);
        let wake = match batcher.next_deadline_us() {
            Some(d) => d.min(next_arrival),
            None => next_arrival,
        };
        wait_until(server, wake);
    }

    let elapsed_us = last_completion_us.saturating_sub(t0).max(1);
    let completed = answered + rejected + failed;
    let batches = batcher.stats().batches - batches_before;
    let flushed = batcher.stats().flushed - flushed_before;
    LoadGenReport {
        target_qps: opts.target_qps,
        offered: opts.requests,
        answered,
        rejected,
        failed,
        achieved_qps: completed as f64 / (elapsed_us as f64 / 1e6),
        batches,
        mean_batch: if batches == 0 {
            0.0
        } else {
            flushed as f64 / batches as f64
        },
        latency: hist.summary(),
    }
}

/// A QPS ladder walked by [`find_max_sustainable`].
#[derive(Clone, Debug, Serialize)]
pub struct SustainedReport {
    /// p99 budget each rung was held to, µs.
    pub p99_budget_us: f64,
    /// Minimum achieved/target throughput ratio to count as sustained.
    pub qps_slack: f64,
    /// Identical trials a rung may take before it counts as failed.
    pub attempts: usize,
    /// One report per attempted rung, in ladder order (stops after the
    /// first failing rung): the sustaining trial, or the last failing one.
    pub steps: Vec<LoadGenReport>,
    /// Highest target QPS that was sustained (0.0 if even the first rung
    /// failed).
    pub max_sustained_qps: f64,
}

/// Walks `ladder` (ascending target QPS) with a fresh [`MicroBatcher`]
/// per trial, stopping at the first rung that misses the p99 budget,
/// sheds or fails traffic, or falls under `qps_slack` of its target in
/// every one of `attempts` identical trials.
///
/// Why retries: on a shared box the wall clock charges host scheduling
/// stalls (tens of ms of preemption) to whichever requests were in
/// flight, and one stall can push 1% of a rung's sample over the budget.
/// Genuine overload is not rescued by retrying — the backlog rebuilds
/// deterministically in every trial — so a rung that passes any attempt
/// was sustainable. `attempts` is clamped to at least 1.
pub fn find_max_sustainable(
    server: &mut BatchServer,
    scheduler: SchedulerConfig,
    base: &LoadGenOptions,
    ladder: &[f64],
    p99_budget_us: f64,
    qps_slack: f64,
    attempts: usize,
) -> SustainedReport {
    let attempts = attempts.max(1);
    let mut steps = Vec::new();
    let mut max_sustained_qps = 0.0f64;
    for &qps in ladder {
        let opts = LoadGenOptions {
            target_qps: qps,
            ..*base
        };
        let mut sustained = false;
        let mut report = None;
        for _ in 0..attempts {
            let mut batcher = MicroBatcher::new(scheduler);
            let trial = run_load(server, &mut batcher, &opts);
            sustained = trial.sustained(p99_budget_us, qps_slack);
            report = Some(trial);
            if sustained {
                break;
            }
        }
        if let Some(report) = report {
            steps.push(report);
        }
        if !sustained {
            break;
        }
        max_sustained_qps = qps;
    }
    SustainedReport {
        p99_budget_us,
        qps_slack,
        attempts,
        steps,
        max_sustained_qps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Clock;
    use crate::store::EmbeddingStore;
    use e2gcl_linalg::Matrix;

    fn server() -> BatchServer {
        let mut m = Matrix::zeros(64, 8);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 13 + 5) % 29) as f32 / 29.0 - 0.5;
        }
        BatchServer::new(EmbeddingStore::new(m)).with_clock(Clock::virtual_at(0))
    }

    fn opts(qps: f64, requests: usize) -> LoadGenOptions {
        LoadGenOptions {
            target_qps: qps,
            requests,
            k: 5,
            inductive_every: 0,
            seed: 3,
        }
    }

    #[test]
    fn answers_every_request_and_reports_qps() {
        let mut s = server();
        let mut b = MicroBatcher::new(SchedulerConfig {
            max_batch: 8,
            max_wait_us: 300,
        });
        let report = run_load(&mut s, &mut b, &opts(10_000.0, 200));
        assert_eq!(report.offered, 200);
        assert_eq!(report.answered, 200);
        assert_eq!((report.rejected, report.failed), (0, 0));
        assert!(report.achieved_qps > 0.0);
        assert!(report.batches > 0);
        assert!(report.mean_batch >= 1.0);
        assert_eq!(report.latency.count, 200);
        assert!(report.latency.p50_us <= report.latency.p99_us);
    }

    #[test]
    fn virtual_clock_replay_is_deterministic() {
        let run = || {
            let mut s = server();
            let mut b = MicroBatcher::new(SchedulerConfig {
                max_batch: 16,
                max_wait_us: 400,
            });
            let report = run_load(&mut s, &mut b, &opts(5_000.0, 300));
            serde_json::to_string(&report).unwrap()
        };
        assert_eq!(run(), run(), "loadgen must replay bit-identically");
    }

    #[test]
    fn sparse_traffic_latency_is_bounded_by_the_wait_window() {
        // On a virtual clock, serving costs zero clock time, so latency is
        // pure coalescing delay — never more than max_wait_us.
        let mut s = server();
        let max_wait_us = 250;
        let mut b = MicroBatcher::new(SchedulerConfig {
            max_batch: 64,
            max_wait_us,
        });
        // 100 QPS → 10 ms between arrivals: every window closes alone.
        let report = run_load(&mut s, &mut b, &opts(100.0, 50));
        assert_eq!(report.answered, 50);
        assert!(
            report.latency.max_us <= max_wait_us as f64,
            "sparse latency {} exceeds the {}µs window",
            report.latency.max_us,
            max_wait_us
        );
        assert!(
            (report.mean_batch - 1.0).abs() < 1e-9,
            "sparse arrivals must not coalesce"
        );
    }

    #[test]
    fn dense_traffic_coalesces_into_full_batches() {
        let mut s = server();
        let mut b = MicroBatcher::new(SchedulerConfig {
            max_batch: 32,
            max_wait_us: 10_000,
        });
        // 1M QPS on a virtual clock: arrivals land together and fill
        // batches long before any window expires.
        let report = run_load(&mut s, &mut b, &opts(1_000_000.0, 320));
        assert_eq!(report.answered, 320);
        assert!(
            report.mean_batch > 16.0,
            "dense arrivals should coalesce (mean batch {})",
            report.mean_batch
        );
    }

    #[test]
    fn ladder_stops_at_first_unsustained_rung() {
        // A deliberately impossible p99 budget of 0 µs fails every rung.
        let mut s = server();
        let report = find_max_sustainable(
            &mut s,
            SchedulerConfig {
                max_batch: 8,
                max_wait_us: 200,
            },
            &opts(0.0, 100),
            &[1_000.0, 2_000.0, 4_000.0],
            0.0,
            0.5,
            2,
        );
        assert_eq!(report.steps.len(), 1, "must stop after the failing rung");
        assert_eq!(report.max_sustained_qps, 0.0);

        // A permissive budget sustains the whole ladder.
        let mut s = server();
        let report = find_max_sustainable(
            &mut s,
            SchedulerConfig {
                max_batch: 8,
                max_wait_us: 200,
            },
            &opts(0.0, 100),
            &[1_000.0, 2_000.0, 4_000.0],
            f64::MAX,
            0.0,
            1,
        );
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.max_sustained_qps, 4_000.0);
    }

    #[test]
    fn mixed_inductive_traffic_counts_failures_without_engine() {
        // No inductive engine: every inductive request fails typed, the
        // rest succeed, and the report separates the two.
        let mut s = server();
        let mut b = MicroBatcher::new(SchedulerConfig {
            max_batch: 8,
            max_wait_us: 100,
        });
        let o = LoadGenOptions {
            inductive_every: 4,
            ..opts(10_000.0, 100)
        };
        let report = run_load(&mut s, &mut b, &o);
        assert_eq!(report.failed, 25);
        assert_eq!(report.answered, 75);
    }
}
