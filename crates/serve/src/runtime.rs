//! Overload-tolerance plumbing for the batch server: clocks, admission
//! control, shed accounting, and deterministic serve-side fault injection.
//!
//! The design splits *time* from *policy* so every resilience behaviour is
//! testable without flakiness:
//!
//! * [`Clock`] — microsecond time the server schedules against. Production
//!   uses [`Clock::wall`]; tests use [`Clock::virtual_at`], where injected
//!   slowness and retry backoff *advance* the clock instead of sleeping, so
//!   deadline expiry is exact and deterministic.
//! * [`RuntimeConfig`] — bounded admission queue, per-request deadline
//!   budget, high-water backpressure threshold, and the retry/degradation
//!   policy for the inductive path.
//! * [`ServeFaultPlan`] — a seed-scoped, query-sequence-keyed description of
//!   serve-side faults (slow queries, inductive-engine failures). The same
//!   plan always injects the same faults into the same queries.
//! * [`ShedStats`] — lifetime counters for every shed/degrade/retry cause.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Microsecond clock behind the serving runtime.
///
/// The wall variant measures real time (and really sleeps on
/// [`Clock::advance_us`], making injected slowness and retry backoff
/// honest); the virtual variant only moves when advanced, which makes
/// deadline and backoff behaviour bit-reproducible in tests and benches.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Real time, measured from the instant the clock was created.
    Wall(Instant),
    /// Manually-advanced time (shared, so parallel workers see one clock).
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock starting at zero now.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A virtual clock reading `start_us`.
    pub fn virtual_at(start_us: u64) -> Self {
        Clock::Virtual(Arc::new(AtomicU64::new(start_us)))
    }

    /// Current reading in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Clock::Virtual(t) => t.load(Ordering::SeqCst),
        }
    }

    /// Lets `us` microseconds pass: real time on the wall clock, an atomic
    /// addition on the virtual one.
    ///
    /// Wall waits are precise, not just lower-bounded: `thread::sleep`
    /// routinely overshoots sub-millisecond requests by whole milliseconds
    /// (timer slack + scheduler wakeup), which at micro-batching
    /// granularity would charge the *host's* jitter to every request's
    /// latency. So the final stretch of every wait is a spin on the clock;
    /// only the part beyond [`SPIN_US`] is delegated to the OS.
    pub fn advance_us(&self, us: u64) {
        /// Wall waits at or under this spin instead of sleeping.
        const SPIN_US: u64 = 1_000;
        match self {
            Clock::Wall(_) => {
                if us == 0 {
                    return;
                }
                let target = self.now_us() + us;
                if us > SPIN_US {
                    std::thread::sleep(Duration::from_micros(us - SPIN_US));
                }
                while self.now_us() < target {
                    std::hint::spin_loop();
                }
            }
            Clock::Virtual(t) => {
                t.fetch_add(us, Ordering::SeqCst);
            }
        }
    }
}

/// Why a request was shed instead of answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectCause {
    /// The bounded admission queue was full.
    Overload,
    /// The request could not finish inside its deadline budget, so the
    /// scheduler refused to start it (shedding beats wasted work).
    DeadlineExceeded,
}

impl fmt::Display for RejectCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectCause::Overload => write!(f, "overload (admission queue full)"),
            RejectCause::DeadlineExceeded => write!(f, "deadline exceeded before start"),
        }
    }
}

/// Structured failure category of a [`crate::Response::Failed`] — stable
/// across message-text changes, so callers can branch without parsing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Node id outside the stored graph.
    NodeOutOfRange,
    /// Query/embedding dimensionality mismatch.
    DimensionMismatch,
    /// Classification without a fitted probe.
    NoProbe,
    /// Inductive query on a server without an inductive engine.
    NoInductiveEngine,
    /// Artifact I/O or decode failure.
    Artifact,
    /// A deterministic fault injected by the active [`ServeFaultPlan`].
    FaultInjected,
    /// An ANN index that does not match the store it was used against.
    IndexMismatch,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::NodeOutOfRange => "node-out-of-range",
            ErrorKind::DimensionMismatch => "dimension-mismatch",
            ErrorKind::NoProbe => "no-probe",
            ErrorKind::NoInductiveEngine => "no-inductive-engine",
            ErrorKind::Artifact => "artifact",
            ErrorKind::FaultInjected => "fault-injected",
            ErrorKind::IndexMismatch => "index-mismatch",
        };
        write!(f, "{s}")
    }
}

/// Admission, deadline and degradation policy for a [`crate::BatchServer`].
///
/// The default is fully permissive — unbounded queue, no deadlines — so a
/// server without explicit configuration behaves exactly like the
/// pre-resilience one.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Maximum requests admitted from one arriving batch (the bounded
    /// queue); the rest are shed as [`RejectCause::Overload`]. `0` means
    /// unbounded.
    pub queue_capacity: usize,
    /// Default per-request deadline budget in microseconds, measured from
    /// batch arrival. `None` disables deadline scheduling.
    pub default_deadline_us: Option<u64>,
    /// Admitted-queue depth at or above which [`crate::BatchServer::backpressure`]
    /// reports true. `0` disables the signal.
    pub high_water: usize,
    /// Retries after the first inductive-engine failure before the query
    /// degrades (or fails).
    pub inductive_retries: usize,
    /// Backoff before the first retry, microseconds; doubles per retry
    /// (mirrors the trainer's `Backoff` guard policy). Advanced on the
    /// server's [`Clock`].
    pub retry_backoff_us: u64,
    /// After persistent inductive failure, answer from the *stored*
    /// embedding row (marked `degraded: true`) instead of failing.
    pub degrade_to_stored: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 0,
            default_deadline_us: None,
            high_water: 0,
            inductive_retries: 2,
            retry_backoff_us: 100,
            degrade_to_stored: true,
        }
    }
}

/// Deterministic serve-side fault plan, keyed on the server's lifetime
/// query sequence number (each admitted query gets the next number).
///
/// `only_seed` scopes the plan to artifacts of one training seed: a plan
/// carried around in shared bench configs cannot accidentally perturb
/// servers for other runs. All injection sites use modular arithmetic on
/// the sequence number, so a plan replays identically.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeFaultPlan {
    /// When set, the plan only fires on servers whose artifact seed equals
    /// this value; on any other server it is inert.
    #[serde(default)]
    pub only_seed: Option<u64>,
    /// Every `slow_every`-th admitted query (seq % n == 0) stalls for
    /// [`Self::slow_us`] before executing. `0` disables.
    #[serde(default)]
    pub slow_every: usize,
    /// Synthetic stall added to a slow query, microseconds.
    #[serde(default)]
    pub slow_us: u64,
    /// Every `inductive_fail_every`-th admitted query (seq % n == 0), if it
    /// takes the inductive path, has its engine call fail. `0` disables.
    #[serde(default)]
    pub inductive_fail_every: usize,
    /// How many consecutive attempts of an injected inductive failure fail:
    /// `0` means *every* attempt (a persistent fault that exhausts retries
    /// and exercises degradation); `n > 0` means the first `n` attempts
    /// fail and attempt `n + 1` succeeds (exercises retry).
    #[serde(default)]
    pub inductive_fail_attempts: usize,
}

impl ServeFaultPlan {
    /// True when the plan applies to a server holding `artifact_seed`.
    pub fn is_active_for(&self, artifact_seed: Option<u64>) -> bool {
        match self.only_seed {
            None => true,
            Some(s) => artifact_seed == Some(s),
        }
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.slow_every == 0 && self.inductive_fail_every == 0
    }

    /// Synthetic stall for query `seq`, microseconds (0 = none).
    pub fn stall_us(&self, seq: u64) -> u64 {
        if self.slow_every > 0 && seq.is_multiple_of(self.slow_every as u64) {
            self.slow_us
        } else {
            0
        }
    }

    /// Whether attempt `attempt` (0-based) of query `seq`'s inductive call
    /// should fail.
    pub fn inductive_fails(&self, seq: u64, attempt: usize) -> bool {
        if self.inductive_fail_every == 0 || !seq.is_multiple_of(self.inductive_fail_every as u64) {
            return false;
        }
        self.inductive_fail_attempts == 0 || attempt < self.inductive_fail_attempts
    }
}

/// Lifetime overload/degradation counters of one server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedStats {
    /// Queries admitted and executed.
    pub admitted: u64,
    /// Queries shed because the admission queue was full.
    pub shed_overload: u64,
    /// Queries shed because they could not meet their deadline.
    pub shed_deadline: u64,
    /// Queries answered from the degraded (stored-embedding) path.
    pub degraded: u64,
    /// Inductive retry attempts performed.
    pub retries: u64,
    /// Queries that returned [`crate::Response::Failed`].
    pub failed: u64,
}

impl ShedStats {
    /// Total queries offered (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.admitted + self.shed_overload + self.shed_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = Clock::virtual_at(100);
        assert_eq!(c.now_us(), 100);
        c.advance_us(50);
        assert_eq!(c.now_us(), 150);
        let c2 = c.clone();
        c2.advance_us(7); // clones share the underlying clock
        assert_eq!(c.now_us(), 157);
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let c = Clock::wall();
        let a = c.now_us();
        c.advance_us(2_000);
        assert!(c.now_us() >= a + 2_000);
    }

    #[test]
    fn fault_plan_keys_on_sequence_number() {
        let plan = ServeFaultPlan {
            slow_every: 3,
            slow_us: 500,
            inductive_fail_every: 2,
            inductive_fail_attempts: 1,
            ..ServeFaultPlan::default()
        };
        assert_eq!(plan.stall_us(0), 500);
        assert_eq!(plan.stall_us(1), 0);
        assert_eq!(plan.stall_us(3), 500);
        assert!(plan.inductive_fails(2, 0));
        assert!(!plan.inductive_fails(2, 1)); // attempt 1 succeeds
        assert!(!plan.inductive_fails(3, 0)); // seq not selected
        let persistent = ServeFaultPlan {
            inductive_fail_every: 1,
            inductive_fail_attempts: 0,
            ..ServeFaultPlan::default()
        };
        for attempt in 0..10 {
            assert!(persistent.inductive_fails(4, attempt));
        }
    }

    #[test]
    fn fault_plan_seed_scoping() {
        let plan = ServeFaultPlan {
            only_seed: Some(42),
            slow_every: 1,
            slow_us: 10,
            ..ServeFaultPlan::default()
        };
        assert!(plan.is_active_for(Some(42)));
        assert!(!plan.is_active_for(Some(7)));
        assert!(!plan.is_active_for(None));
        let unscoped = ServeFaultPlan {
            slow_every: 1,
            ..ServeFaultPlan::default()
        };
        assert!(unscoped.is_active_for(None));
        assert!(unscoped.is_active_for(Some(7)));
    }

    #[test]
    fn fault_plan_serde_round_trips() {
        let plan = ServeFaultPlan {
            only_seed: Some(3),
            slow_every: 4,
            slow_us: 250,
            inductive_fail_every: 5,
            inductive_fail_attempts: 2,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: ServeFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Old / sparse configs deserialise to an inert plan.
        let sparse: ServeFaultPlan = serde_json::from_str("{}").unwrap();
        assert!(sparse.is_empty());
    }

    #[test]
    fn shed_stats_offered_totals() {
        let s = ShedStats {
            admitted: 10,
            shed_overload: 3,
            shed_deadline: 2,
            ..ShedStats::default()
        };
        assert_eq!(s.offered(), 15);
    }
}
