//! A small dependency-free LRU cache (slab + intrusive doubly-linked list).
//!
//! Backs the per-node embedding cache of the inductive query engine: hot
//! nodes answer from memory, cold nodes pay one ego-subgraph forward. All
//! operations are O(1) amortised; hit/miss counters feed the serving
//! metrics.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (`capacity == 0` caches
    /// nothing and every lookup is a miss).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when full.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let old = &mut self.slab[lru];
            self.map.remove(&old.key);
            old.key = key.clone();
            old.value = value;
            self.map.insert(key, lru);
            self.attach_front(lru);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now MRU
        c.put(3, "c"); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // replace, promotes 1
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.put(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 1));
        // Repeated puts (including same-key "replaces") stay no-ops.
        c.put(1, 2);
        c.put(2, 3);
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.stats(), (0, 2));
    }

    #[test]
    fn capacity_one_holds_exactly_the_latest_entry() {
        let mut c = LruCache::new(1);
        assert_eq!(c.capacity(), 1);
        c.put(1, "a");
        assert_eq!(c.get(&1), Some(&"a"));
        // Any new key evicts the single resident.
        c.put(2, "b");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"b"));
        // Same-key replacement keeps the entry, updates the value.
        c.put(2, "b2");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&"b2"));
        // Churn through many keys: the head/tail links of the intrusive
        // list must stay coherent at the degenerate size.
        for i in 0..50 {
            c.put(i, "x");
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&"x"));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.put(1, 1);
        let _ = c.get(&1);
        let _ = c.get(&1);
        let _ = c.get(&9);
        assert_eq!(c.stats(), (2, 1));
    }

    /// Exhaustive small-scale check against a naive reference model.
    #[test]
    fn matches_reference_model_under_churn() {
        let cap = 3;
        let mut c = LruCache::new(cap);
        let mut reference: Vec<(u32, u32)> = Vec::new(); // MRU-first
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for _ in 0..2000 {
            // Cheap xorshift stream of operations.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 7) as u32;
            if x.is_multiple_of(3) {
                let val = (x % 100) as u32;
                c.put(key, val);
                reference.retain(|&(k, _)| k != key);
                reference.insert(0, (key, val));
                reference.truncate(cap);
            } else {
                let expect = reference.iter().position(|&(k, _)| k == key);
                let got = c.get(&key).copied();
                match expect {
                    Some(i) => {
                        assert_eq!(got, Some(reference[i].1));
                        let e = reference.remove(i);
                        reference.insert(0, e);
                    }
                    None => assert_eq!(got, None),
                }
            }
            assert_eq!(c.len(), reference.len());
        }
    }
}
