//! Latency recording for the batch server.
//!
//! Plain sample-vector histogram: every batch records one duration, and
//! percentiles are computed on demand from the sorted samples (exact, no
//! bucketing error — serving benches record thousands, not billions, of
//! samples).

use serde::Serialize;
use std::time::Duration;

/// Latency samples for one key (e.g. one batch size).
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
}

/// Summary statistics of one histogram, in microseconds.
#[derive(Clone, Debug, Serialize)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Median latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Mean latency.
    pub mean_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        self.samples_ns
            .push(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The `p`-th percentile (0–100) by nearest-rank interpolation over the
    /// sorted samples; zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        Duration::from_nanos(sorted[rank.round() as usize])
    }

    /// Full summary (p50/p95/p99/mean/max) in microseconds.
    pub fn summary(&self) -> LatencySummary {
        let count = self.samples_ns.len();
        if count == 0 {
            return LatencySummary {
                count: 0,
                p50_us: 0.0,
                p95_us: 0.0,
                p99_us: 0.0,
                mean_us: 0.0,
                max_us: 0.0,
            };
        }
        let us = |d: Duration| d.as_nanos() as f64 / 1_000.0;
        let total: u128 = self.samples_ns.iter().map(|&n| n as u128).sum();
        let max = self.samples_ns.iter().copied().max().unwrap_or(0);
        LatencySummary {
            count,
            p50_us: us(self.percentile(50.0)),
            p95_us: us(self.percentile(95.0)),
            p99_us: us(self.percentile(99.0)),
            mean_us: total as f64 / count as f64 / 1_000.0,
            max_us: max as f64 / 1_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.len(), 100);
        // 0..=99 ranks over 1..=100 ms: p50 rounds to rank 50 → 51 ms.
        assert_eq!(h.percentile(50.0), Duration::from_millis(51));
        assert_eq!(h.percentile(0.0), Duration::from_millis(1));
        assert_eq!(h.percentile(100.0), Duration::from_millis(100));
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50_500.0).abs() < 1.0);
        assert!((s.max_us - 100_000.0).abs() < 1e-6);
        assert!(s.p95_us >= s.p50_us && s.p99_us >= s.p95_us);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), Duration::ZERO);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert!((s.p50_us - 7.0).abs() < 1e-9);
        assert!((s.p99_us - 7.0).abs() < 1e-9);
    }
}
