//! Deterministic IVF (inverted-file) approximate-NN index over an
//! [`EmbeddingStore`].
//!
//! Brute-force cosine top-k scans every stored row, so query latency grows
//! linearly with corpus size — fine at Cora scale, hopeless at the
//! million-row tier PR 7 made trainable. An IVF index makes latency scale
//! with `nprobe / nlist` of the corpus instead: a k-means **coarse
//! quantizer** partitions the rows into `nlist` inverted lists, a query
//! scores only the `nprobe` closest lists, and the surviving candidates
//! are re-ranked with the **exact** cosine kernel ([`EmbeddingStore::
//! top_k_among`]). Approximation lives solely in which lists are probed;
//! scores and tie-breaking are identical to brute force, so recall@k is
//! the only quality axis (measured, not assumed — see [`IvfIndex::
//! measure_recall`] and the ci.sh recall gate).
//!
//! # Determinism contract
//!
//! Construction is **bitwise reproducible** across runs and
//! `RAYON_NUM_THREADS` settings, extending the PR 4 kernel contract
//! (DESIGN.md §11) to index builds:
//!
//! * all randomness flows from one [`SeedRng`] seeded by
//!   [`IvfConfig::seed`], consumed in a fixed sequential order;
//! * cluster assignment uses the blocked [`Matrix::matmul_transpose`]
//!   kernel, which is bitwise thread-invariant, followed by a sequential
//!   strict-`>` argmax (ties → lowest list id);
//! * centroid updates, empty-list reseeding and inverted-list layout are
//!   sequential; node ids are ascending within every list by construction.
//!
//! `tests/index_determinism.rs` re-executes the build in subprocesses
//! under different thread counts and compares [`IvfIndex::to_bytes`]
//! fingerprints.
//!
//! # On-disk layout (version 1)
//!
//! Same framing as model artifacts (`artifact.rs`): magic, version,
//! payload length, FNV-1a64 checksum, payload. Loading a corrupt file
//! quarantines it to `<path>.corrupt`, exactly like [`crate::Artifact`].
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"E2GCLIVF"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     payload length in bytes, u64 LE
//! 20      8     FNV-1a 64-bit checksum of the payload, u64 LE
//! 28      ...   payload
//! ```
//!
//! Payload, in order (integers LE): `store_rows` u64 · `dim` u32 ·
//! `store_checksum` u64 · `nlist` u32 · `nprobe` u32 · `train_sample` u64
//! · `kmeans_iters` u32 · `seed` u64 · centroid matrix (u32 rows · u32
//! cols · row-major f32 bits) · `nlist + 1` list offsets u64 ·
//! `store_rows` node ids u32.
//!
//! The `store_checksum` binds the index to the exact embedding matrix it
//! was built over; [`IvfIndex::matches`] rejects a drifted store before
//! it can silently serve wrong neighbours.

use crate::artifact::{self, Cursor};
use crate::store::{cosine_from_dot, EmbeddingStore, Hit, TopKCollector};
use crate::{ArtifactError, ServeError};
use e2gcl_linalg::dispatch;
use e2gcl_linalg::{Matrix, SeedRng};
use serde::Serialize;
use std::path::Path;

/// Leading 8 bytes of every index file.
pub const INDEX_MAGIC: [u8; 8] = *b"E2GCLIVF";
/// Current index format version.
pub const INDEX_VERSION: u32 = 1;
/// Size of the fixed header (magic + version + payload length + checksum).
const HEADER_LEN: usize = 28;

/// Rows scored per blocked-GEMM assignment chunk. Bounds the `chunk x
/// nlist` score buffer (8192 x 2048 f32 = 64 MB worst case) without
/// affecting results: each output element's accumulation order depends
/// only on the inner dimension, never on how rows are chunked.
const ASSIGN_CHUNK: usize = 8192;

/// Build/search parameters of an IVF index. Serialized into the index
/// file, so a loaded index knows exactly how it was built.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means centroids). Clamped to
    /// `[1, store_rows]` at build time.
    pub nlist: usize,
    /// Lists scanned per query. Clamped to `[1, nlist]`. Higher → better
    /// recall, linearly more re-rank work.
    pub nprobe: usize,
    /// Rows sampled (without replacement) to train the quantizer. Clamped
    /// to `[nlist, store_rows]`.
    pub train_sample: usize,
    /// Lloyd iterations of spherical k-means.
    pub kmeans_iters: usize,
    /// Master seed for sampling, initialisation and reseeding.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 256,
            nprobe: 8,
            train_sample: 32_768,
            kmeans_iters: 6,
            seed: 0,
        }
    }
}

impl IvfConfig {
    /// A config scaled to a store of `rows` rows: `nlist ≈ sqrt(rows)`
    /// (clamped to `[16, 2048]`), defaults elsewhere.
    pub fn for_rows(rows: usize) -> Self {
        let nlist = ((rows as f64).sqrt() as usize)
            .clamp(16, 2048)
            .min(rows.max(1));
        Self {
            nlist,
            ..Self::default()
        }
    }
}

/// Contiguous per-list copies of the store's rows and norms, in `node_ids`
/// order, so scanning a probed list streams sequential memory instead of
/// gathering rows scattered across the store matrix (the difference
/// between ~100 µs and ~500 µs per query at a million rows). Pure
/// acceleration state: rebuilt by [`IvfIndex::pack`], never serialized,
/// and byte-for-byte the store's own row data — scores cannot differ.
#[derive(Clone, Debug)]
struct PackedRows {
    /// `node_ids.len() x dim`, row `i` is the store row `node_ids[i]`.
    rows: Vec<f32>,
    /// `node_ids.len()`, the matching precomputed L2 norms.
    norms: Vec<f32>,
}

/// A deterministically-built IVF index bound to one exact
/// [`EmbeddingStore`] snapshot.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    config: IvfConfig,
    dim: usize,
    store_rows: usize,
    store_checksum: u64,
    /// `nlist x dim`, each row L2-normalised (spherical k-means).
    centroids: Matrix,
    /// `nlist + 1` prefix offsets into `node_ids`.
    list_offsets: Vec<u64>,
    /// All store rows, grouped by list, ascending node id within a list.
    node_ids: Vec<u32>,
    /// List-ordered row copies ([`PackedRows`]); `None` until packed.
    packed: Option<PackedRows>,
}

impl IvfIndex {
    /// Builds the index over `store` with `config` (clamped to the store's
    /// size — the effective values are recorded in [`Self::config`]).
    ///
    /// Deterministic: same store + same config → bitwise-identical index,
    /// independent of `RAYON_NUM_THREADS` (module docs).
    pub fn build(store: &EmbeddingStore, config: IvfConfig) -> Result<IvfIndex, ServeError> {
        let rows = store.len();
        let dim = store.dim();
        if rows == 0 || dim == 0 {
            return Err(ServeError::IndexMismatch {
                reason: "cannot build an IVF index over an empty store".into(),
            });
        }
        if rows > u32::MAX as usize {
            return Err(ServeError::IndexMismatch {
                reason: format!("store has {rows} rows; the index format caps node ids at u32"),
            });
        }
        let mut cfg = config;
        cfg.nlist = cfg.nlist.clamp(1, rows);
        cfg.nprobe = cfg.nprobe.clamp(1, cfg.nlist);
        cfg.kmeans_iters = cfg.kmeans_iters.max(1);
        cfg.train_sample = cfg.train_sample.clamp(cfg.nlist, rows);

        let mut rng = SeedRng::new(cfg.seed);

        // Training sample, ascending so the gather below is sequential.
        let sample_ids: Vec<usize> = if cfg.train_sample >= rows {
            (0..rows).collect()
        } else {
            let mut ids = rng
                .fork("ivf-sample")
                .sample_without_replacement(rows, cfg.train_sample);
            ids.sort_unstable();
            ids
        };
        let m = sample_ids.len();

        // L2-normalised training rows: spherical k-means clusters by
        // direction, matching the cosine metric the store serves.
        let mut train = Matrix::zeros(m, dim);
        for (i, &id) in sample_ids.iter().enumerate() {
            let norm = store.norms()[id];
            if norm > 0.0 {
                let dst = train.row_mut(i);
                for (d, &v) in dst.iter_mut().zip(store.embeddings().row(id)) {
                    *d = v / norm;
                }
            }
        }

        // Initial centroids: distinct training rows, picked once.
        let mut picks = rng
            .fork("ivf-init")
            .sample_without_replacement(m, cfg.nlist);
        picks.sort_unstable();
        let mut centroids = train.select_rows(&picks);
        for l in 0..cfg.nlist {
            normalize(centroids.row_mut(l));
        }

        // Lloyd iterations: thread-invariant GEMM assignment, sequential
        // accumulation and reseeding.
        let mut assign = vec![0u32; m];
        for it in 0..cfg.kmeans_iters {
            assign_chunked(&train, &centroids, &mut assign);
            let mut sums = Matrix::zeros(cfg.nlist, dim);
            let mut counts = vec![0u64; cfg.nlist];
            for (i, &a) in assign.iter().enumerate() {
                counts[a as usize] += 1;
                for (s, &v) in sums.row_mut(a as usize).iter_mut().zip(train.row(i)) {
                    *s += v;
                }
            }
            let mut reseed = rng.fork(&format!("ivf-reseed-{it}"));
            for (l, &count) in counts.iter().enumerate() {
                if count == 0 {
                    // Empty list: restart it on a random training row so no
                    // list stays dead (deterministic — sequential draws).
                    let pick = reseed.below(m);
                    let src: Vec<f32> = train.row(pick).to_vec();
                    centroids.row_mut(l).copy_from_slice(&src);
                } else {
                    let inv = 1.0 / count as f32;
                    for (c, &s) in centroids.row_mut(l).iter_mut().zip(sums.row(l)) {
                        *c = s * inv;
                    }
                }
                normalize(centroids.row_mut(l));
            }
        }

        // Final assignment over *all* rows. Raw rows are fine here: the
        // argmax of `dot(row, centroid)` over lists is invariant to the
        // row's (positive) norm, and zero rows land in list 0.
        let mut full_assign = vec![0u32; rows];
        assign_chunked(store.embeddings(), &centroids, &mut full_assign);

        // Counting-sort into inverted lists. Iterating nodes in ascending
        // order makes ids ascending within every list by construction.
        let mut list_offsets = vec![0u64; cfg.nlist + 1];
        for &a in &full_assign {
            list_offsets[a as usize + 1] += 1;
        }
        for l in 0..cfg.nlist {
            list_offsets[l + 1] += list_offsets[l];
        }
        let mut cursor: Vec<u64> = list_offsets[..cfg.nlist].to_vec();
        let mut node_ids = vec![0u32; rows];
        for (node, &a) in full_assign.iter().enumerate() {
            let c = &mut cursor[a as usize];
            node_ids[*c as usize] = node as u32;
            *c += 1;
        }

        let mut index = IvfIndex {
            config: cfg,
            dim,
            store_rows: rows,
            store_checksum: store.checksum(),
            centroids,
            list_offsets,
            node_ids,
            packed: None,
        };
        // The builder had the store in hand, so pack straight away; the
        // checksum was computed from this exact store, so this can't fail.
        index.pack(store)?;
        Ok(index)
    }

    /// The effective (clamped) build/search configuration.
    pub fn config(&self) -> IvfConfig {
        self.config
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Lists scanned per query.
    pub fn nprobe(&self) -> usize {
        self.config.nprobe
    }

    /// Embedding dimensionality the index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows in the store the index was built over.
    pub fn store_rows(&self) -> usize {
        self.store_rows
    }

    /// Re-tunes the recall/latency trade-off without rebuilding (clamped
    /// to `[1, nlist]`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.config.nprobe = nprobe.clamp(1, self.nlist());
    }

    /// Checks that `store` is byte-for-byte the store this index was built
    /// over (row count, dimensionality, content checksum). Full-content
    /// check — call once at attach/load time, not per query.
    pub fn matches(&self, store: &EmbeddingStore) -> Result<(), ServeError> {
        if store.len() != self.store_rows || store.dim() != self.dim {
            return Err(ServeError::IndexMismatch {
                reason: format!(
                    "index built over {}x{}, store is {}x{}",
                    self.store_rows,
                    self.dim,
                    store.len(),
                    store.dim()
                ),
            });
        }
        let actual = store.checksum();
        if actual != self.store_checksum {
            return Err(ServeError::IndexMismatch {
                reason: format!(
                    "store content checksum {actual:#018x} does not match the \
                     {:#018x} the index was built over",
                    self.store_checksum
                ),
            });
        }
        Ok(())
    }

    /// Builds the [`PackedRows`] scan acceleration from `store` (validated
    /// with [`Self::matches`] first). [`Self::build`] packs automatically;
    /// call this after [`Self::load`]/[`Self::from_bytes`], which cannot —
    /// the file holds only list structure, not row data. Unpacked indexes
    /// still serve correctly, just slower (scattered store gathers).
    pub fn pack(&mut self, store: &EmbeddingStore) -> Result<(), ServeError> {
        self.matches(store)?;
        let mut rows = vec![0.0f32; self.node_ids.len() * self.dim];
        let mut norms = vec![0.0f32; self.node_ids.len()];
        for (i, &id) in self.node_ids.iter().enumerate() {
            let id = id as usize;
            rows[i * self.dim..(i + 1) * self.dim].copy_from_slice(store.embeddings().row(id));
            norms[i] = store.norms()[id];
        }
        self.packed = Some(PackedRows { rows, norms });
        Ok(())
    }

    /// True when the packed-scan acceleration is built.
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// The `nprobe` list ids closest to `query` (by dot product with the
    /// normalised centroids, which for any non-degenerate query orders
    /// exactly like cosine). Ties break toward the lower list id.
    pub fn probe_lists(&self, query: &[f32]) -> Vec<usize> {
        let mut top = TopKCollector::new(self.config.nprobe.min(self.nlist()));
        // Register-tiled sweep: four centroid rows per step, remainder one
        // at a time, through the dispatched lane kernel
        // ([`e2gcl_linalg::dispatch`]). On either dispatch path `lane_dot4`
        // is element-wise bit-identical to that path's `lane_dot`, so the
        // tiling cannot change which lists win.
        let kpath = dispatch::current_path();
        let n = self.nlist();
        let cm = self.centroids.as_slice();
        let d = self.dim;
        let quads = n / 4;
        for q in 0..quads {
            let base = 4 * q * d;
            let dots = kpath.lane_dot4(
                query,
                &cm[base..base + d],
                &cm[base + d..base + 2 * d],
                &cm[base + 2 * d..base + 3 * d],
                &cm[base + 3 * d..base + 4 * d],
            );
            for (j, &dot) in dots.iter().enumerate() {
                // Canonicalise -0.0 → +0.0 so sign-of-zero can't break ties.
                top.offer(4 * q + j, dot + 0.0);
            }
        }
        for l in 4 * quads..n {
            top.offer(l, kpath.lane_dot(self.centroids.row(l), query) + 0.0);
        }
        top.into_hits().into_iter().map(|(l, _)| l).collect()
    }

    /// Approximate top-`k`: probes the closest `nprobe` lists, then
    /// re-ranks every candidate with the exact cosine kernel. Scores and
    /// tie-breaking are identical to [`EmbeddingStore::top_k`]; only
    /// candidate coverage is approximate.
    pub fn search(
        &self,
        store: &EmbeddingStore,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<Hit>, ServeError> {
        if store.len() != self.store_rows || store.dim() != self.dim {
            return Err(ServeError::IndexMismatch {
                reason: format!(
                    "index built over {}x{}, store is {}x{}",
                    self.store_rows,
                    self.dim,
                    store.len(),
                    store.dim()
                ),
            });
        }
        if query.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let lists = self.probe_lists(query);
        let Some(packed) = &self.packed else {
            // Unpacked (e.g. freshly loaded): gather rows from the store.
            let candidates = lists.iter().flat_map(|&l| {
                let lo = self.list_offsets[l] as usize;
                let hi = self.list_offsets[l + 1] as usize;
                self.node_ids[lo..hi].iter().map(|&id| id as usize)
            });
            return store.top_k_among(candidates, query, k);
        };
        // Packed scan: the same scoring expression and collector as
        // `top_k_among`, over contiguous copies of the same row bytes —
        // bitwise-identical hits, sequential memory, four rows per step.
        let qnorm = query.iter().map(|v| v * v).sum::<f32>().sqrt();
        let d = self.dim;
        let kpath = dispatch::current_path();
        let mut top = TopKCollector::new(k);
        for &l in &lists {
            let lo = self.list_offsets[l] as usize;
            let hi = self.list_offsets[l + 1] as usize;
            let mut i = lo;
            while i + 4 <= hi {
                let base = i * d;
                let dots = kpath.lane_dot4(
                    query,
                    &packed.rows[base..base + d],
                    &packed.rows[base + d..base + 2 * d],
                    &packed.rows[base + 2 * d..base + 3 * d],
                    &packed.rows[base + 3 * d..base + 4 * d],
                );
                for (j, &dot) in dots.iter().enumerate() {
                    let score = cosine_from_dot(dot, packed.norms[i + j], qnorm);
                    top.offer(self.node_ids[i + j] as usize, score);
                }
                i += 4;
            }
            for i in i..hi {
                let row = &packed.rows[i * d..(i + 1) * d];
                let score = cosine_from_dot(kpath.lane_dot(row, query), packed.norms[i], qnorm);
                top.offer(self.node_ids[i] as usize, score);
            }
        }
        Ok(top.into_hits())
    }

    /// Mean recall@`k` of [`Self::search`] against brute-force
    /// [`EmbeddingStore::top_k`], using the stored rows named by
    /// `query_nodes` as queries. Vacuously `1.0` for no queries.
    pub fn measure_recall(
        &self,
        store: &EmbeddingStore,
        query_nodes: &[usize],
        k: usize,
    ) -> Result<f64, ServeError> {
        if query_nodes.is_empty() || k == 0 {
            return Ok(1.0);
        }
        let mut total = 0.0f64;
        for &node in query_nodes {
            let q = store.embedding(node)?.to_vec();
            let exact = store.top_k(&q, k)?;
            let approx = self.search(store, &q, k)?;
            if exact.is_empty() {
                total += 1.0;
                continue;
            }
            let got: std::collections::HashSet<usize> = approx.iter().map(|&(n, _)| n).collect();
            let hit = exact.iter().filter(|&&(n, _)| got.contains(&n)).count();
            total += hit as f64 / exact.len() as f64;
        }
        Ok(total / query_nodes.len() as f64)
    }

    /// Serialises to the version-1 byte format (module docs). The bytes
    /// are a pure function of the build inputs — the ci.sh determinism
    /// gate compares them across independent builds.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.store_rows as u64).to_le_bytes());
        payload.extend_from_slice(&(self.dim as u32).to_le_bytes());
        payload.extend_from_slice(&self.store_checksum.to_le_bytes());
        payload.extend_from_slice(&(self.config.nlist as u32).to_le_bytes());
        payload.extend_from_slice(&(self.config.nprobe as u32).to_le_bytes());
        payload.extend_from_slice(&(self.config.train_sample as u64).to_le_bytes());
        payload.extend_from_slice(&(self.config.kmeans_iters as u32).to_le_bytes());
        payload.extend_from_slice(&self.config.seed.to_le_bytes());
        artifact::put_matrix(&mut payload, &self.centroids);
        for &off in &self.list_offsets {
            payload.extend_from_slice(&off.to_le_bytes());
        }
        for &id in &self.node_ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&artifact::fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses an index, verifying framing, checksum and every structural
    /// invariant (offset monotonicity, node-id bounds, in-list ordering).
    pub fn from_bytes(bytes: &[u8]) -> Result<IvfIndex, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN - bytes.len(),
                available: bytes.len(),
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[..8]);
        if magic != INDEX_MAGIC {
            return Err(ArtifactError::BadMagic(magic));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != INDEX_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[12..20]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[20..28]);
        let expected = u64::from_le_bytes(sum8);
        let body = &bytes[HEADER_LEN..];
        if body.len() < payload_len {
            return Err(ArtifactError::Truncated {
                needed: payload_len - body.len(),
                available: body.len(),
            });
        }
        if body.len() > payload_len {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing bytes after payload",
                body.len() - payload_len
            )));
        }
        let actual = artifact::fnv1a64(body);
        if actual != expected {
            return Err(ArtifactError::ChecksumMismatch { expected, actual });
        }

        let mut cur = Cursor::new(body);
        let store_rows = cur.take_u64()? as usize;
        let dim = cur.take_u32()? as usize;
        let store_checksum = cur.take_u64()?;
        let nlist = cur.take_u32()? as usize;
        let nprobe = cur.take_u32()? as usize;
        let train_sample = cur.take_u64()? as usize;
        let kmeans_iters = cur.take_u32()? as usize;
        let seed = cur.take_u64()?;
        let centroids = cur.take_matrix()?;
        if nlist == 0 || nprobe == 0 || nprobe > nlist {
            return Err(ArtifactError::Corrupt(format!(
                "invalid list geometry: nlist {nlist}, nprobe {nprobe}"
            )));
        }
        if centroids.rows() != nlist || centroids.cols() != dim {
            return Err(ArtifactError::Corrupt(format!(
                "centroid matrix is {}x{}, expected {nlist}x{dim}",
                centroids.rows(),
                centroids.cols()
            )));
        }
        let mut list_offsets = Vec::with_capacity(nlist + 1);
        for _ in 0..=nlist {
            list_offsets.push(cur.take_u64()?);
        }
        if list_offsets[0] != 0
            || list_offsets.windows(2).any(|w| w[0] > w[1])
            || list_offsets[nlist] != store_rows as u64
        {
            return Err(ArtifactError::Corrupt(
                "list offsets are not a monotone cover of the store".into(),
            ));
        }
        let mut node_ids = Vec::with_capacity(store_rows);
        for _ in 0..store_rows {
            node_ids.push(cur.take_u32()?);
        }
        cur.finish()?;
        for w in 0..nlist {
            let lo = list_offsets[w] as usize;
            let hi = list_offsets[w + 1] as usize;
            let list = &node_ids[lo..hi];
            if list.windows(2).any(|p| p[0] >= p[1]) {
                return Err(ArtifactError::Corrupt(format!(
                    "list {w} node ids are not strictly ascending"
                )));
            }
            if list.iter().any(|&id| id as usize >= store_rows) {
                return Err(ArtifactError::Corrupt(format!(
                    "list {w} references a node beyond the store"
                )));
            }
        }
        Ok(IvfIndex {
            config: IvfConfig {
                nlist,
                nprobe,
                train_sample,
                kmeans_iters,
                seed,
            },
            dim,
            store_rows,
            store_checksum,
            centroids,
            list_offsets,
            node_ids,
            packed: None,
        })
    }

    /// Writes the index crash-safely (temp sibling + fsync + atomic
    /// rename), like [`crate::Artifact::save`].
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        e2gcl::durable::atomic_write(path, &self.to_bytes())
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and parses an index from `path`. A file that reads fine but
    /// fails to decode is quarantined to `<path>.corrupt`, mirroring
    /// [`crate::Artifact::load`].
    pub fn load(path: &Path) -> Result<IvfIndex, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        match Self::from_bytes(&bytes) {
            Ok(index) => Ok(index),
            Err(cause) => match e2gcl::durable::quarantine(path) {
                Ok(q) => Err(ArtifactError::Quarantined {
                    quarantined_to: q.display().to_string(),
                    cause: Box::new(cause),
                }),
                Err(_) => Err(cause),
            },
        }
    }
}

/// L2-normalises `v` in place (zero vectors stay zero).
fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Writes each data row's closest-centroid list id into `out`, chunking
/// rows through the blocked (bitwise thread-invariant) GEMM kernel.
/// Argmax is a sequential strict-`>` scan: ties go to the lowest list id.
fn assign_chunked(data: &Matrix, centroids: &Matrix, out: &mut [u32]) {
    let dim = data.cols();
    let mut start = 0;
    while start < data.rows() {
        let end = (start + ASSIGN_CHUNK).min(data.rows());
        let chunk = Matrix::from_vec(
            end - start,
            dim,
            data.as_slice()[start * dim..end * dim].to_vec(),
        );
        let scores = chunk.matmul_transpose(centroids);
        for i in 0..(end - start) {
            let row = scores.row(i);
            let mut best = 0usize;
            let mut best_score = row[0];
            for (l, &s) in row.iter().enumerate().skip(1) {
                if s > best_score {
                    best = l;
                    best_score = s;
                }
            }
            out[start + i] = best as u32;
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `rows` rows in `clusters` well-separated directions plus noise —
    /// the community-structured shape real embeddings have, where IVF
    /// recall is meaningful (uniform random data has no cluster structure
    /// for the quantizer to exploit).
    fn clustered_store(rows: usize, dim: usize, clusters: usize, seed: u64) -> EmbeddingStore {
        let mut rng = SeedRng::new(seed);
        let mut centers = Matrix::zeros(clusters, dim);
        for v in centers.as_mut_slice() {
            *v = rng.normal();
        }
        let mut m = Matrix::zeros(rows, dim);
        for r in 0..rows {
            let c = rng.below(clusters);
            for (d, x) in m.row_mut(r).iter_mut().enumerate() {
                *x = centers.get(c, d) + 0.15 * rng.normal();
            }
        }
        EmbeddingStore::new(m)
    }

    fn small_index(store: &EmbeddingStore) -> IvfIndex {
        IvfIndex::build(
            store,
            IvfConfig {
                nlist: 16,
                nprobe: 4,
                train_sample: 1024,
                kmeans_iters: 5,
                seed: 7,
            },
        )
        .unwrap()
    }

    #[test]
    fn full_probe_matches_brute_force_exactly() {
        let store = clustered_store(400, 8, 10, 1);
        let mut index = small_index(&store);
        index.set_nprobe(index.nlist()); // probe everything → exact
        for node in [0usize, 17, 399] {
            let q = store.embedding(node).unwrap().to_vec();
            let exact = store.top_k(&q, 10).unwrap();
            let approx = index.search(&store, &q, 10).unwrap();
            assert_eq!(exact, approx, "node {node}");
        }
    }

    #[test]
    fn recall_on_clustered_data_meets_contract() {
        let store = clustered_store(2000, 8, 16, 2);
        let index = small_index(&store);
        let queries: Vec<usize> = (0..100).map(|i| i * 19 % store.len()).collect();
        let recall = index.measure_recall(&store, &queries, 10).unwrap();
        assert!(recall >= 0.95, "recall@10 {recall} below the 0.95 contract");
    }

    #[test]
    fn build_is_deterministic_within_process() {
        let store = clustered_store(600, 8, 8, 3);
        let a = small_index(&store).to_bytes();
        let b = small_index(&store).to_bytes();
        assert_eq!(a, b, "two builds over the same store must be bitwise equal");
    }

    #[test]
    fn lists_cover_store_with_ascending_ids() {
        let store = clustered_store(500, 8, 8, 4);
        let index = small_index(&store);
        assert_eq!(index.list_offsets[0], 0);
        assert_eq!(*index.list_offsets.last().unwrap(), 500);
        let mut seen = vec![false; 500];
        for l in 0..index.nlist() {
            let lo = index.list_offsets[l] as usize;
            let hi = index.list_offsets[l + 1] as usize;
            let list = &index.node_ids[lo..hi];
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "list {l} not ascending"
            );
            for &id in list {
                assert!(!seen[id as usize], "node {id} in two lists");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node is in no list");
    }

    #[test]
    fn bytes_round_trip_and_search_agrees() {
        let store = clustered_store(300, 8, 6, 5);
        let index = small_index(&store);
        let bytes = index.to_bytes();
        let loaded = IvfIndex::from_bytes(&bytes).unwrap();
        assert_eq!(bytes, loaded.to_bytes());
        assert_eq!(index.config(), loaded.config());
        let q = store.embedding(42).unwrap().to_vec();
        assert_eq!(
            index.search(&store, &q, 10).unwrap(),
            loaded.search(&store, &q, 10).unwrap()
        );
    }

    #[test]
    fn packed_scan_matches_unpacked_gather_exactly() {
        let store = clustered_store(800, 12, 8, 11);
        let packed = small_index(&store);
        assert!(packed.is_packed(), "build() must pack");
        let unpacked = IvfIndex::from_bytes(&packed.to_bytes()).unwrap();
        assert!(!unpacked.is_packed(), "from_bytes() must not pack");
        for q in 0..40 {
            let query = store.embedding(q * 20).unwrap().to_vec();
            assert_eq!(
                packed.search(&store, &query, 10).unwrap(),
                unpacked.search(&store, &query, 10).unwrap(),
                "packed and gather paths diverged on query {q}"
            );
        }
    }

    #[test]
    fn corrupt_bytes_are_typed_errors() {
        let store = clustered_store(200, 8, 4, 6);
        let bytes = small_index(&store).to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            IvfIndex::from_bytes(&bad),
            Err(ArtifactError::BadMagic(_))
        ));

        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            IvfIndex::from_bytes(&bad),
            Err(ArtifactError::UnsupportedVersion(99))
        ));

        let mut bad = bytes.clone();
        let mid = HEADER_LEN + (bad.len() - HEADER_LEN) / 2;
        bad[mid] ^= 0x20;
        assert!(matches!(
            IvfIndex::from_bytes(&bad),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            IvfIndex::from_bytes(&bytes[..bytes.len() - 5]),
            Err(ArtifactError::Truncated { .. })
        ));

        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            IvfIndex::from_bytes(&bad),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_file_is_quarantined_on_load() {
        let store = clustered_store(150, 8, 4, 7);
        let index = small_index(&store);
        let dir = std::env::temp_dir();
        let path = dir.join("e2gcl_ivf_quarantine_test.ivf");
        let quarantined = dir.join("e2gcl_ivf_quarantine_test.ivf.corrupt");
        let _ = std::fs::remove_file(&quarantined);
        let mut bytes = index.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        e2gcl::durable::atomic_write(&path, &bytes).unwrap();

        let err = IvfIndex::load(&path).unwrap_err();
        assert!(matches!(err, ArtifactError::Quarantined { .. }), "{err}");
        assert!(!path.exists());
        assert!(quarantined.exists());
        assert!(matches!(IvfIndex::load(&path), Err(ArtifactError::Io(_))));
        let _ = std::fs::remove_file(&quarantined);
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let store = clustered_store(120, 8, 4, 8);
        let index = small_index(&store);
        let path = std::env::temp_dir().join("e2gcl_ivf_roundtrip_test.ivf");
        index.save(&path).unwrap();
        let loaded = IvfIndex::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(index.to_bytes(), loaded.to_bytes());
        assert!(loaded.matches(&store).is_ok());
    }

    #[test]
    fn mismatched_store_is_rejected() {
        let store = clustered_store(100, 8, 4, 9);
        let index = small_index(&store);
        assert!(index.matches(&store).is_ok());

        // Same shape, different content.
        let other = clustered_store(100, 8, 4, 10);
        let err = index.matches(&other).unwrap_err();
        assert!(matches!(err, ServeError::IndexMismatch { .. }), "{err}");

        // Different shape fails fast in search too.
        let small = clustered_store(50, 8, 4, 11);
        let q = vec![0.0f32; 8];
        assert!(matches!(
            index.search(&small, &q, 5),
            Err(ServeError::IndexMismatch { .. })
        ));
    }

    #[test]
    fn duplicated_rows_rank_identically_to_brute_force() {
        // Duplicate every row: ANN re-rank and brute force must emit the
        // same ascending-node-id tie order for the equal-score pairs.
        let base = clustered_store(100, 8, 4, 12);
        let mut data = Matrix::zeros(200, 8);
        for r in 0..100 {
            data.set_row(r, base.embedding(r).unwrap());
            data.set_row(r + 100, base.embedding(r).unwrap());
        }
        let store = EmbeddingStore::new(data);
        let mut index = small_index(&store);
        index.set_nprobe(index.nlist());
        for node in [0usize, 55, 199] {
            let q = store.embedding(node).unwrap().to_vec();
            assert_eq!(
                store.top_k(&q, 20).unwrap(),
                index.search(&store, &q, 20).unwrap(),
                "node {node}"
            );
        }
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let store = clustered_store(10, 4, 2, 13);
        let index = IvfIndex::build(
            &store,
            IvfConfig {
                nlist: 1000,  // > rows
                nprobe: 5000, // > nlist
                train_sample: 0,
                kmeans_iters: 0,
                seed: 0,
            },
        )
        .unwrap();
        let cfg = index.config();
        assert!(cfg.nlist <= 10 && cfg.nlist >= 1);
        assert!(cfg.nprobe <= cfg.nlist);
        assert!(cfg.kmeans_iters >= 1);
        let q = store.embedding(0).unwrap().to_vec();
        assert_eq!(
            index.search(&store, &q, 10).unwrap(),
            store.top_k(&q, 10).unwrap()
        );
    }

    #[test]
    fn empty_store_is_rejected() {
        let store = EmbeddingStore::new(Matrix::zeros(0, 4));
        assert!(matches!(
            IvfIndex::build(&store, IvfConfig::default()),
            Err(ServeError::IndexMismatch { .. })
        ));
    }

    #[test]
    fn k_zero_returns_empty() {
        let store = clustered_store(50, 8, 4, 14);
        let index = small_index(&store);
        let q = store.embedding(0).unwrap().to_vec();
        assert!(index.search(&store, &q, 0).unwrap().is_empty());
    }
}
