//! In-memory embedding store with batched similarity and classification
//! queries.
//!
//! The store holds the artifact's full-graph embedding matrix plus
//! precomputed row norms; queries are cosine top-k (nearest neighbours) and
//! linear-probe classification. Batches fan out over the rayon worker pool.

use crate::ServeError;
use e2gcl_linalg::Matrix;
use e2gcl_linalg::SeedRng;
use e2gcl_nn::probe::{standard_stats, LinearProbe, ProbeConfig};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One similarity hit: `(node, cosine score)`.
pub type Hit = (usize, f32);

/// A scored node ordered by `(score, node)` with NaN-safe total ordering.
#[derive(PartialEq)]
struct Scored {
    score: f32,
    node: usize,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Frozen embeddings, indexed for serving.
pub struct EmbeddingStore {
    embeddings: Matrix,
    norms: Vec<f32>,
    probe: Option<ProbeState>,
}

/// A fitted probe plus the store-matrix standardisation statistics — one-row
/// serving queries must be standardised with the *store's* stats, not their
/// own (see [`LinearProbe::predict_with_stats`]).
struct ProbeState {
    probe: LinearProbe,
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl EmbeddingStore {
    /// Indexes an embedding matrix for serving.
    pub fn new(embeddings: Matrix) -> Self {
        let norms = (0..embeddings.rows())
            .map(|r| embeddings.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        Self {
            embeddings,
            norms,
            probe: None,
        }
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.embeddings.rows()
    }

    /// True when the store holds no embeddings.
    pub fn is_empty(&self) -> bool {
        self.embeddings.rows() == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.embeddings.cols()
    }

    /// The stored embedding of `node`.
    pub fn embedding(&self, node: usize) -> Result<&[f32], ServeError> {
        if node >= self.len() {
            return Err(ServeError::NodeOutOfRange {
                node,
                num_nodes: self.len(),
            });
        }
        Ok(self.embeddings.row(node))
    }

    /// The `k` stored nodes most cosine-similar to `query`, best first;
    /// ties broken by ascending node id. Zero-norm rows (or a zero query)
    /// score 0.
    pub fn top_k(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, ServeError> {
        if query.len() != self.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let qnorm = query.iter().map(|v| v * v).sum::<f32>().sqrt();
        let mut heap: BinaryHeap<Reverse<Scored>> = BinaryHeap::with_capacity(k + 1);
        for node in 0..self.len() {
            let denom = qnorm * self.norms[node];
            let score = if denom > 0.0 {
                let dot: f32 = self
                    .embeddings
                    .row(node)
                    .iter()
                    .zip(query)
                    .map(|(a, b)| a * b)
                    .sum();
                dot / denom
            } else {
                0.0
            };
            heap.push(Reverse(Scored { score, node }));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<Hit> = heap
            .into_iter()
            .map(|Reverse(s)| (s.node, s.score))
            .collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(hits)
    }

    /// [`Self::top_k`] for a batch of queries, fanned out over the worker
    /// pool. Per-query errors stay per-query.
    pub fn batch_top_k(&self, queries: &[Vec<f32>], k: usize) -> Vec<Result<Vec<Hit>, ServeError>> {
        queries.par_iter().map(|q| self.top_k(q, k)).collect()
    }

    /// Fits a linear probe on `(embeddings[train], labels[train])` and
    /// retains it (plus the store's standardisation stats) for
    /// [`Self::classify`].
    pub fn fit_probe(
        &mut self,
        labels: &[usize],
        train: &[usize],
        num_classes: usize,
        config: &ProbeConfig,
        rng: &mut SeedRng,
    ) {
        let probe = LinearProbe::fit(&self.embeddings, labels, train, num_classes, config, rng);
        let (means, stds) = standard_stats(&self.embeddings);
        self.probe = Some(ProbeState { probe, means, stds });
    }

    /// Classifies a query embedding with the fitted probe.
    pub fn classify(&self, query: &[f32]) -> Result<usize, ServeError> {
        if query.len() != self.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let state = self.probe.as_ref().ok_or(ServeError::NoProbe)?;
        let m = Matrix::from_vec(1, query.len(), query.to_vec());
        let preds = state
            .probe
            .predict_with_stats(&m, &state.means, &state.stds);
        Ok(preds[0])
    }

    /// True when a probe has been fitted.
    pub fn has_probe(&self) -> bool {
        self.probe.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        // Four unit-ish vectors: 0 and 1 aligned, 2 orthogonal, 3 opposite.
        EmbeddingStore::new(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[2.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, 0.0],
        ]))
    }

    #[test]
    fn top_k_orders_by_cosine() {
        let s = store();
        let hits = s.top_k(&[1.0, 0.0], 3).unwrap();
        assert_eq!(hits.len(), 3);
        // Nodes 0 and 1 both score 1.0; tie broken by node id.
        assert_eq!((hits[0].0, hits[1].0, hits[2].0), (0, 1, 2));
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
        assert!((hits[2].1 - 0.0).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let s = store();
        assert_eq!(s.top_k(&[1.0, 0.0], 100).unwrap().len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let s = store();
        assert!(s.top_k(&[1.0, 0.0], 0).unwrap().is_empty());
        // The dimension check still runs before the early return.
        assert!(s.top_k(&[1.0], 0).is_err());
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let s = store();
        assert!(matches!(
            s.top_k(&[1.0], 2),
            Err(ServeError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert!(matches!(
            s.embedding(99),
            Err(ServeError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_query_scores_zero_everywhere() {
        let s = store();
        let hits = s.top_k(&[0.0, 0.0], 4).unwrap();
        assert!(hits.iter().all(|&(_, score)| score == 0.0));
    }

    #[test]
    fn batch_matches_singles() {
        let s = store();
        let queries = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let batch = s.batch_top_k(&queries, 2);
        for (q, b) in queries.iter().zip(batch) {
            assert_eq!(b.unwrap(), s.top_k(q, 2).unwrap());
        }
    }

    #[test]
    fn classify_requires_probe_then_matches_full_predict() {
        let mut rng = SeedRng::new(5);
        let n = 40;
        let mut m = Matrix::zeros(n, 3);
        let mut labels = vec![0usize; n];
        for (v, label) in labels.iter_mut().enumerate() {
            let c = v % 2;
            *label = c;
            for (i, x) in m.row_mut(v).iter_mut().enumerate() {
                *x = if i == c { 2.0 } else { -2.0 };
                *x += 0.1 * rng.normal();
            }
        }
        let mut s = EmbeddingStore::new(m);
        assert!(matches!(s.classify(&[0.0; 3]), Err(ServeError::NoProbe)));
        let train: Vec<usize> = (0..n).collect();
        s.fit_probe(&labels, &train, 2, &ProbeConfig::default(), &mut rng);
        assert!(s.has_probe());
        let mut correct = 0;
        for (v, &label) in labels.iter().enumerate() {
            let row = s.embedding(v).unwrap().to_vec();
            if s.classify(&row).unwrap() == label {
                correct += 1;
            }
        }
        assert!(correct as f32 / n as f32 > 0.9);
    }
}
