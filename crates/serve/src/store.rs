//! In-memory embedding store with batched similarity and classification
//! queries.
//!
//! The store holds the artifact's full-graph embedding matrix plus
//! precomputed row norms; queries are cosine top-k (nearest neighbours) and
//! linear-probe classification. Batches fan out over the rayon worker pool.

use crate::ServeError;
use e2gcl_linalg::Matrix;
use e2gcl_linalg::SeedRng;
use e2gcl_nn::probe::{standard_stats, LinearProbe, ProbeConfig};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One similarity hit: `(node, cosine score)`.
pub type Hit = (usize, f32);

/// A scored node ordered by `(score, node)` with NaN-safe total ordering.
#[derive(PartialEq)]
struct Scored {
    score: f32,
    node: usize,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Streaming top-`k` collector with the store's ranking contract: best
/// cosine first, exact ties broken by **ascending node id**. Both the
/// brute-force scan and the IVF re-rank feed candidates through this one
/// type, so the two paths can never disagree on ordering.
pub(crate) struct TopKCollector {
    k: usize,
    heap: BinaryHeap<Reverse<Scored>>,
}

impl TopKCollector {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    pub(crate) fn offer(&mut self, node: usize, score: f32) {
        if self.heap.len() < self.k {
            self.heap.push(Reverse(Scored { score, node }));
            return;
        }
        // Most candidates lose; reject on one comparison against the
        // current k-th instead of paying a push + pop. Equivalent to the
        // naive push-then-pop: `Scored`'s ordering is strict for distinct
        // nodes, so the survivor set is identical either way (a candidate
        // ranked at or below the k-th is dropped by both).
        match self.heap.peek() {
            Some(Reverse(kth)) if *kth < (Scored { score, node }) => {
                self.heap.pop();
                self.heap.push(Reverse(Scored { score, node }));
            }
            _ => {}
        }
    }

    pub(crate) fn into_hits(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .heap
            .into_iter()
            .map(|Reverse(s)| (s.node, s.score))
            .collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hits
    }
}

/// The one cosine-normalisation expression in the serving stack, applied
/// to a dot product with the dispatched lane-kernel bit-semantics
/// ([`e2gcl_linalg::dispatch`]: `ops::lane_dot` on the scalar path, the
/// 8-lane fused analogue on AVX2). Brute force scores rows in the store's
/// matrix one at a time ([`cosine_from_parts`]); the IVF packed-list scan
/// scores contiguous copies of the same rows four at a time via the
/// dispatched `lane_dot4` — identical bits in, identical score bits out
/// within a dispatch config, because each path's `lane_dot4` is
/// element-wise bit-identical to its `lane_dot` and this normalisation is
/// shared.
///
/// Zero-denominator pairs score `0.0`; a computed `-0.0` is canonicalised
/// to `+0.0` so numerically equal scores are equal under `total_cmp` too
/// (otherwise the sign bit, not the node id, would break the tie).
#[inline]
pub(crate) fn cosine_from_dot(dot: f32, norm: f32, qnorm: f32) -> f32 {
    let denom = qnorm * norm;
    let score = if denom > 0.0 { dot / denom } else { 0.0 };
    // -0.0 + 0.0 == +0.0 in IEEE-754; every other value (NaN included)
    // passes through unchanged.
    score + 0.0
}

/// Cosine of one row against the query: [`cosine_from_dot`] over the
/// dispatched lane kernel for `kpath` (independent partial sums, fixed
/// deterministic order — see the path's contract docs). The path is an
/// explicit argument so parallel callers score with the path captured on
/// the *calling* thread (rayon workers don't inherit a thread-local
/// dispatch override).
#[inline]
pub(crate) fn cosine_from_parts(
    kpath: e2gcl_linalg::DispatchPath,
    row: &[f32],
    norm: f32,
    query: &[f32],
    qnorm: f32,
) -> f32 {
    cosine_from_dot(kpath.lane_dot(row, query), norm, qnorm)
}

/// Frozen embeddings, indexed for serving.
pub struct EmbeddingStore {
    embeddings: Matrix,
    norms: Vec<f32>,
    probe: Option<ProbeState>,
}

/// A fitted probe plus the store-matrix standardisation statistics — one-row
/// serving queries must be standardised with the *store's* stats, not their
/// own (see [`LinearProbe::predict_with_stats`]).
struct ProbeState {
    probe: LinearProbe,
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl EmbeddingStore {
    /// Indexes an embedding matrix for serving.
    pub fn new(embeddings: Matrix) -> Self {
        let norms = (0..embeddings.rows())
            .map(|r| embeddings.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        Self {
            embeddings,
            norms,
            probe: None,
        }
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.embeddings.rows()
    }

    /// True when the store holds no embeddings.
    pub fn is_empty(&self) -> bool {
        self.embeddings.rows() == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.embeddings.cols()
    }

    /// The raw embedding matrix (index construction reads it in bulk).
    pub(crate) fn embeddings(&self) -> &Matrix {
        &self.embeddings
    }

    /// Precomputed L2 row norms, one per node.
    pub(crate) fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// The stored embedding of `node`.
    pub fn embedding(&self, node: usize) -> Result<&[f32], ServeError> {
        if node >= self.len() {
            return Err(ServeError::NodeOutOfRange {
                node,
                num_nodes: self.len(),
            });
        }
        Ok(self.embeddings.row(node))
    }

    /// The exact cosine score of `node` against `query` (whose norm the
    /// caller precomputed) — [`cosine_from_parts`] over the stored row, so
    /// a node gets the bitwise-identical score on the brute-force and IVF
    /// paths.
    #[inline]
    pub(crate) fn cosine_score(
        &self,
        kpath: e2gcl_linalg::DispatchPath,
        node: usize,
        query: &[f32],
        qnorm: f32,
    ) -> f32 {
        cosine_from_parts(
            kpath,
            self.embeddings.row(node),
            self.norms[node],
            query,
            qnorm,
        )
    }

    /// The `k` stored nodes most cosine-similar to `query`, best first;
    /// exactly equal scores break ties by ascending node id. Zero-norm rows
    /// (or a zero query) score 0.
    pub fn top_k(&self, query: &[f32], k: usize) -> Result<Vec<Hit>, ServeError> {
        self.top_k_among(0..self.len(), query, k)
    }

    /// [`Self::top_k`] restricted to `candidates` — the exact re-rank
    /// behind the IVF index. Scoring and tie-breaking are shared with the
    /// brute-force path, so on equal candidate sets the two orderings are
    /// identical. Out-of-range candidate ids are a typed error; duplicate
    /// candidates are the caller's bug (the node would be reported twice).
    pub fn top_k_among<I>(
        &self,
        candidates: I,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<Hit>, ServeError>
    where
        I: IntoIterator<Item = usize>,
    {
        if query.len() != self.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let qnorm = query.iter().map(|v| v * v).sum::<f32>().sqrt();
        let kpath = e2gcl_linalg::dispatch::current_path();
        let mut top = TopKCollector::new(k);
        for node in candidates {
            if node >= self.len() {
                return Err(ServeError::NodeOutOfRange {
                    node,
                    num_nodes: self.len(),
                });
            }
            top.offer(node, self.cosine_score(kpath, node, query, qnorm));
        }
        Ok(top.into_hits())
    }

    /// FNV-1a 64 over the embedding matrix's shape and IEEE-754 bit
    /// patterns. An [`crate::index::IvfIndex`] records this at build time
    /// and refuses to serve a store it was not built over.
    pub fn checksum(&self) -> u64 {
        let mut h = e2gcl_linalg::hash::Fnv1a64::new();
        h.write_u64(self.embeddings.rows() as u64);
        h.write_u64(self.embeddings.cols() as u64);
        for &v in self.embeddings.as_slice() {
            h.write_f32(v);
        }
        h.finish()
    }

    /// [`Self::top_k`] for a batch of queries, fanned out over the worker
    /// pool. Per-query errors stay per-query.
    pub fn batch_top_k(&self, queries: &[Vec<f32>], k: usize) -> Vec<Result<Vec<Hit>, ServeError>> {
        queries.par_iter().map(|q| self.top_k(q, k)).collect()
    }

    /// Fits a linear probe on `(embeddings[train], labels[train])` and
    /// retains it (plus the store's standardisation stats) for
    /// [`Self::classify`].
    pub fn fit_probe(
        &mut self,
        labels: &[usize],
        train: &[usize],
        num_classes: usize,
        config: &ProbeConfig,
        rng: &mut SeedRng,
    ) {
        let probe = LinearProbe::fit(&self.embeddings, labels, train, num_classes, config, rng);
        let (means, stds) = standard_stats(&self.embeddings);
        self.probe = Some(ProbeState { probe, means, stds });
    }

    /// Classifies a query embedding with the fitted probe.
    pub fn classify(&self, query: &[f32]) -> Result<usize, ServeError> {
        if query.len() != self.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let state = self.probe.as_ref().ok_or(ServeError::NoProbe)?;
        let m = Matrix::from_vec(1, query.len(), query.to_vec());
        let preds = state
            .probe
            .predict_with_stats(&m, &state.means, &state.stds);
        Ok(preds[0])
    }

    /// True when a probe has been fitted.
    pub fn has_probe(&self) -> bool {
        self.probe.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        // Four unit-ish vectors: 0 and 1 aligned, 2 orthogonal, 3 opposite.
        EmbeddingStore::new(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[2.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, 0.0],
        ]))
    }

    #[test]
    fn top_k_orders_by_cosine() {
        let s = store();
        let hits = s.top_k(&[1.0, 0.0], 3).unwrap();
        assert_eq!(hits.len(), 3);
        // Nodes 0 and 1 both score 1.0; tie broken by node id.
        assert_eq!((hits[0].0, hits[1].0, hits[2].0), (0, 1, 2));
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
        assert!((hits[2].1 - 0.0).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let s = store();
        assert_eq!(s.top_k(&[1.0, 0.0], 100).unwrap().len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let s = store();
        assert!(s.top_k(&[1.0, 0.0], 0).unwrap().is_empty());
        // The dimension check still runs before the early return.
        assert!(s.top_k(&[1.0], 0).is_err());
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let s = store();
        assert!(matches!(
            s.top_k(&[1.0], 2),
            Err(ServeError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert!(matches!(
            s.embedding(99),
            Err(ServeError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_query_scores_zero_everywhere() {
        let s = store();
        let hits = s.top_k(&[0.0, 0.0], 4).unwrap();
        assert!(hits.iter().all(|&(_, score)| score == 0.0));
    }

    /// Regression: deliberately duplicated rows must rank by ascending node
    /// id — everywhere in the result, including across the k-th-place
    /// boundary — and identically through the restricted-candidate path.
    #[test]
    fn duplicated_rows_tie_break_by_ascending_node_id() {
        // Rows 0/2/5 are byte-identical, rows 1/4 are byte-identical
        // doubles of them (same cosine), row 3 is orthogonal.
        let s = EmbeddingStore::new(Matrix::from_rows(&[
            &[3.0, 4.0],
            &[6.0, 8.0],
            &[3.0, 4.0],
            &[-4.0, 3.0],
            &[6.0, 8.0],
            &[3.0, 4.0],
        ]));
        let q = [3.0, 4.0];
        let hits = s.top_k(&q, 6).unwrap();
        let order: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(order, vec![0, 1, 2, 4, 5, 3]);
        // The five tied nodes all carry the exact same score bits.
        let s0 = hits[0].1;
        assert!(hits[..5].iter().all(|h| h.1.to_bits() == s0.to_bits()));
        // Truncating at k inside the tie keeps the lowest node ids.
        let top3: Vec<usize> = s.top_k(&q, 3).unwrap().iter().map(|h| h.0).collect();
        assert_eq!(top3, vec![0, 1, 2]);
        // The candidate-restricted path agrees with brute force.
        let among = s.top_k_among(0..6, &q, 3).unwrap();
        assert_eq!(among, s.top_k(&q, 3).unwrap());
        // A reversed candidate order must not change the ranking.
        let rev = s.top_k_among((0..6).rev(), &q, 3).unwrap();
        assert_eq!(rev, s.top_k(&q, 3).unwrap());
    }

    /// Regression: a score that lands on `-0.0` must tie with `+0.0` (they
    /// are numerically equal) instead of sorting below it by sign bit.
    /// Node 0's row norm overflows `f32` to `+inf`, so its (negative)
    /// finite dot divides to `-0.0`; node 1 is a zero row scoring `+0.0`.
    #[test]
    fn signed_zero_scores_tie_break_by_node_id() {
        let s = EmbeddingStore::new(Matrix::from_rows(&[
            &[3.0e19, 0.0], // norm inf → dot -3e19 / inf = -0.0
            &[0.0, 0.0],    // zero denom → +0.0
            &[1.0, 0.0],    // dot -1.0 → score -1.0
        ]));
        let q = [-1.0, 0.0];
        let hits = s.top_k(&q, 3).unwrap();
        assert!(hits[0].1 == 0.0 && hits[1].1 == 0.0, "{hits:?}");
        assert_eq!(hits[0].1.to_bits(), 0, "score must canonicalise to +0.0");
        let order: Vec<usize> = hits.iter().map(|h| h.0).collect();
        assert_eq!(order, vec![0, 1, 2], "signed zero broke the node-id tie");
    }

    #[test]
    fn top_k_among_rejects_out_of_range_candidates() {
        let s = store();
        assert!(matches!(
            s.top_k_among([0usize, 9], &[1.0, 0.0], 2),
            Err(ServeError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn checksum_tracks_content() {
        let a = EmbeddingStore::new(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = EmbeddingStore::new(Matrix::from_rows(&[&[1.0, 2.0]]));
        let c = EmbeddingStore::new(Matrix::from_rows(&[&[1.0, 2.5]]));
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn batch_matches_singles() {
        let s = store();
        let queries = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let batch = s.batch_top_k(&queries, 2);
        for (q, b) in queries.iter().zip(batch) {
            assert_eq!(b.unwrap(), s.top_k(q, 2).unwrap());
        }
    }

    #[test]
    fn classify_requires_probe_then_matches_full_predict() {
        let mut rng = SeedRng::new(5);
        let n = 40;
        let mut m = Matrix::zeros(n, 3);
        let mut labels = vec![0usize; n];
        for (v, label) in labels.iter_mut().enumerate() {
            let c = v % 2;
            *label = c;
            for (i, x) in m.row_mut(v).iter_mut().enumerate() {
                *x = if i == c { 2.0 } else { -2.0 };
                *x += 0.1 * rng.normal();
            }
        }
        let mut s = EmbeddingStore::new(m);
        assert!(matches!(s.classify(&[0.0; 3]), Err(ServeError::NoProbe)));
        let train: Vec<usize> = (0..n).collect();
        s.fit_probe(&labels, &train, 2, &ProbeConfig::default(), &mut rng);
        assert!(s.has_probe());
        let mut correct = 0;
        for (v, &label) in labels.iter().enumerate() {
            let row = s.embedding(v).unwrap().to_vec();
            if s.classify(&row).unwrap() == label {
                correct += 1;
            }
        }
        assert!(correct as f32 / n as f32 > 0.9);
    }
}
