//! Versioned, checksummed binary artifacts for trained models.
//!
//! An artifact is everything a serving process needs to answer queries
//! without retraining: run metadata (model/dataset/scale/seed), the exact
//! [`TrainConfig`], the frozen encoder weights, and the final embedding
//! matrix. Save → load round-trips **bitwise**: every `f32` is written as
//! its IEEE-754 bit pattern (little-endian), and the `TrainConfig` travels
//! as JSON through the workspace's shortest-round-trip float formatter.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"E2GCLART"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     payload length in bytes, u64 LE
//! 20      8     FNV-1a 64-bit checksum of the payload, u64 LE
//! 28      ...   payload (exactly `payload length` bytes, nothing after)
//! ```
//!
//! Payload, in order (all integers LE, strings/bytes length-prefixed u32):
//! `model` str · `dataset` str · `scale` f64-bits · `seed` u64 ·
//! config JSON bytes · encoder section · embeddings matrix.
//! The encoder section is a kind tag (u8: 0 GCN, 1 SGC, 2 SAGE), an aux u32
//! (layer count for GCN/SAGE, propagation depth `L` for SGC), a matrix
//! count u32, then each weight matrix as u32 rows · u32 cols · row-major
//! f32 bits. The embedding matrix uses the same encoding.
//!
//! Every decode failure is a typed [`ArtifactError`] — corrupted, truncated
//! or wrong-version files never panic (property-tested in
//! `tests/proptests.rs`).

use e2gcl::config::TrainConfig;
use e2gcl_linalg::Matrix;
use e2gcl_nn::{FrozenEncoder, GcnEncoder, SageEncoder, SgcEncoder};
use std::fmt;
use std::path::Path;

/// Leading 8 bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"E2GCLART";
/// Current format version.
pub const VERSION: u32 = 1;
/// Size of the fixed header (magic + version + payload length + checksum).
pub const HEADER_LEN: usize = 28;

/// Typed artifact failure — the only way loading can go wrong.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem error while reading/writing (message carries the cause).
    Io(String),
    /// The first 8 bytes are not [`MAGIC`] — not an artifact file.
    BadMagic([u8; 8]),
    /// The file's format version is newer/older than this build supports.
    UnsupportedVersion(u32),
    /// Payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The file ends before a field does.
    Truncated {
        /// Bytes the current field still needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// Structurally invalid content (bad tag, shapes that don't chain,
    /// trailing bytes, unparsable config …).
    Corrupt(String),
    /// [`Artifact::load`] found a file that failed to decode and moved it
    /// aside to `<path>.corrupt` so the next load attempt fails fast with a
    /// missing-file error instead of re-parsing known-bad bytes.
    Quarantined {
        /// Where the bad file now lives.
        quarantined_to: String,
        /// Why decoding failed.
        cause: Box<ArtifactError>,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::BadMagic(m) => write!(f, "not an artifact file (magic {m:02x?})"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (this build reads {VERSION})")
            }
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            ArtifactError::Truncated { needed, available } => write!(
                f,
                "artifact truncated: field needs {needed} more bytes, {available} left"
            ),
            ArtifactError::Corrupt(why) => write!(f, "artifact corrupt: {why}"),
            ArtifactError::Quarantined {
                quarantined_to,
                cause,
            } => write!(f, "artifact quarantined to {quarantined_to}: {cause}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Provenance of the run that produced an artifact — enough to regenerate
/// the (deterministic, synthetic) dataset the embeddings were trained on.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactMeta {
    /// Model name as given to the trainer (e.g. `e2gcl`, `grace`).
    pub model: String,
    /// Dataset name (e.g. `cora-sim`).
    pub dataset: String,
    /// Dataset scale factor.
    pub scale: f64,
    /// Master seed of the run.
    pub seed: u64,
}

/// A trained model, packaged for serving.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Run provenance.
    pub meta: ArtifactMeta,
    /// The exact training configuration (round-trips through JSON).
    pub config: TrainConfig,
    /// Frozen encoder weights.
    pub encoder: FrozenEncoder,
    /// Final full-graph embeddings (`n x d`).
    pub embeddings: Matrix,
}

const KIND_GCN: u8 = 0;
const KIND_SGC: u8 = 1;
const KIND_SAGE: u8 = 2;

impl Artifact {
    /// Serialises to the version-1 byte format described in the module docs.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ArtifactError> {
        let mut payload = Vec::new();
        put_str(&mut payload, &self.meta.model);
        put_str(&mut payload, &self.meta.dataset);
        payload.extend_from_slice(&self.meta.scale.to_bits().to_le_bytes());
        payload.extend_from_slice(&self.meta.seed.to_le_bytes());
        let config_json = serde_json::to_string(&self.config)
            .map_err(|e| ArtifactError::Corrupt(format!("config does not serialise: {e}")))?;
        put_bytes(&mut payload, config_json.as_bytes());
        let (kind, aux) = match &self.encoder {
            FrozenEncoder::Gcn(e) => (KIND_GCN, e.num_layers() as u32),
            FrozenEncoder::Sgc(e) => (KIND_SGC, e.layers as u32),
            FrozenEncoder::Sage(e) => (KIND_SAGE, e.num_layers() as u32),
        };
        payload.push(kind);
        payload.extend_from_slice(&aux.to_le_bytes());
        let params = self.encoder.params();
        payload.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for m in params {
            put_matrix(&mut payload, m);
        }
        put_matrix(&mut payload, &self.embeddings);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Parses an artifact, verifying magic, version, length and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN - bytes.len(),
                available: bytes.len(),
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[..8]);
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic(magic));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[12..20]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[20..28]);
        let expected = u64::from_le_bytes(sum8);
        let body = &bytes[HEADER_LEN..];
        if body.len() < payload_len {
            return Err(ArtifactError::Truncated {
                needed: payload_len - body.len(),
                available: body.len(),
            });
        }
        if body.len() > payload_len {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing bytes after payload",
                body.len() - payload_len
            )));
        }
        let actual = fnv1a64(body);
        if actual != expected {
            return Err(ArtifactError::ChecksumMismatch { expected, actual });
        }

        let mut cur = Cursor::new(body);
        let model = cur.take_str()?;
        let dataset = cur.take_str()?;
        let scale = f64::from_bits(cur.take_u64()?);
        let seed = cur.take_u64()?;
        let config_bytes = cur.take_bytes()?;
        let config_json = std::str::from_utf8(config_bytes)
            .map_err(|_| ArtifactError::Corrupt("config is not UTF-8".into()))?;
        let config: TrainConfig = serde_json::from_str(config_json)
            .map_err(|e| ArtifactError::Corrupt(format!("config does not parse: {e}")))?;
        let kind = cur.take_u8()?;
        let aux = cur.take_u32()? as usize;
        let n_params = cur.take_u32()? as usize;
        let mut params = Vec::with_capacity(n_params.min(1024));
        for _ in 0..n_params {
            params.push(cur.take_matrix()?);
        }
        let encoder = decode_encoder(kind, aux, params)?;
        let embeddings = cur.take_matrix()?;
        cur.finish()?;
        if embeddings.cols() != encoder.output_dim() {
            return Err(ArtifactError::Corrupt(format!(
                "embedding dim {} does not match encoder output dim {}",
                embeddings.cols(),
                encoder.output_dim()
            )));
        }
        Ok(Artifact {
            meta: ArtifactMeta {
                model,
                dataset,
                scale,
                seed,
            },
            config,
            encoder,
            embeddings,
        })
    }

    /// Writes the artifact to `path` **crash-safely**: the bytes go to a
    /// temporary sibling first, are fsynced, and are then atomically renamed
    /// over `path`. A crash at any point leaves either the old artifact or
    /// the new one — never a torn mixture.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes()?;
        e2gcl::durable::atomic_write(path, &bytes)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
    }

    /// Fault-injection hook: writes only the first `keep` bytes of the
    /// serialised artifact, *non*-atomically — the on-disk state a crash
    /// mid-way through a naive `fs::write` save would leave behind. Lets
    /// crash-safety tests (and the CLI's `--fault-torn-write` flag) produce
    /// a deterministic torn artifact without actually killing a process.
    pub fn save_torn(&self, path: &Path, keep: usize) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes()?;
        e2gcl::durable::write_torn(path, &bytes, keep)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and parses an artifact from `path`.
    ///
    /// A file that *reads* fine but fails to decode (torn write, bit rot,
    /// foreign bytes) is **quarantined**: renamed to `<path>.corrupt` and
    /// reported as [`ArtifactError::Quarantined`] carrying the decode
    /// failure as its cause. Pure I/O failures (missing file, permissions)
    /// stay [`ArtifactError::Io`] and move nothing.
    pub fn load(path: &Path) -> Result<Artifact, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        match Self::from_bytes(&bytes) {
            Ok(artifact) => Ok(artifact),
            Err(cause) => match e2gcl::durable::quarantine(path) {
                Ok(q) => Err(ArtifactError::Quarantined {
                    quarantined_to: q.display().to_string(),
                    cause: Box::new(cause),
                }),
                // Quarantine is best-effort; the decode error is the story.
                Err(_) => Err(cause),
            },
        }
    }
}

/// Rebuilds the typed encoder, validating structure first so the `nn`
/// constructors' assertions can never fire on untrusted bytes.
fn decode_encoder(
    kind: u8,
    aux: usize,
    params: Vec<Matrix>,
) -> Result<FrozenEncoder, ArtifactError> {
    match kind {
        KIND_GCN => {
            if params.is_empty() || params.len() != aux {
                return Err(ArtifactError::Corrupt(format!(
                    "gcn encoder: {} weight matrices for {aux} layers",
                    params.len()
                )));
            }
            if params.windows(2).any(|p| p[0].cols() != p[1].rows()) {
                return Err(ArtifactError::Corrupt(
                    "gcn layer shapes do not chain".into(),
                ));
            }
            Ok(FrozenEncoder::Gcn(GcnEncoder::from_weights(params)))
        }
        KIND_SGC => {
            if params.len() != 1 {
                return Err(ArtifactError::Corrupt(format!(
                    "sgc encoder: expected 1 weight matrix, got {}",
                    params.len()
                )));
            }
            let mut params = params;
            let w = params.remove(0);
            Ok(FrozenEncoder::Sgc(SgcEncoder::from_parts(w, aux)))
        }
        KIND_SAGE => {
            if aux == 0 || params.len() != 2 * aux {
                return Err(ArtifactError::Corrupt(format!(
                    "sage encoder: {} weight matrices for {aux} layers",
                    params.len()
                )));
            }
            Ok(FrozenEncoder::Sage(SageEncoder::from_params(params, aux)))
        }
        other => Err(ArtifactError::Corrupt(format!(
            "unknown encoder kind tag {other}"
        ))),
    }
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty to detect the
/// bit-flips/truncations an integrity check is for (not cryptographic).
/// Re-exported from the shared durable-write module so artifacts and
/// training checkpoints agree on one checksum.
pub use e2gcl::durable::fnv1a64;

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

pub(crate) fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Bounds-checked sequential reader over the payload (shared with the IVF
/// index format in [`crate::index`], which mirrors the artifact framing).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(ArtifactError::Truncated {
                needed: n - available,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn take_bytes(&mut self) -> Result<&'a [u8], ArtifactError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    fn take_str(&mut self) -> Result<String, ArtifactError> {
        let b = self.take_bytes()?;
        std::str::from_utf8(b)
            .map(|s| s.to_string())
            .map_err(|_| ArtifactError::Corrupt("string field is not UTF-8".into()))
    }

    pub(crate) fn take_matrix(&mut self) -> Result<Matrix, ArtifactError> {
        let rows = self.take_u32()? as usize;
        let cols = self.take_u32()? as usize;
        let count = rows.checked_mul(cols).ok_or_else(|| {
            ArtifactError::Corrupt(format!("matrix shape {rows}x{cols} overflows"))
        })?;
        let bytes = self.take(count.checked_mul(4).ok_or_else(|| {
            ArtifactError::Corrupt(format!("matrix shape {rows}x{cols} overflows"))
        })?)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), ArtifactError> {
        if self.pos != self.buf.len() {
            return Err(ArtifactError::Corrupt(format!(
                "{} unread bytes inside payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;

    pub(crate) fn sample(kind: u8) -> Artifact {
        let mut rng = SeedRng::new(9);
        let encoder = match kind {
            KIND_GCN => FrozenEncoder::Gcn(GcnEncoder::new(&[4, 6, 3], &mut rng)),
            KIND_SGC => FrozenEncoder::Sgc(SgcEncoder::new(4, 3, 2, &mut rng)),
            _ => FrozenEncoder::Sage(SageEncoder::new(&[4, 6, 3], &mut rng)),
        };
        let mut embeddings = Matrix::zeros(7, 3);
        for v in embeddings.as_mut_slice() {
            *v = rng.normal();
        }
        Artifact {
            meta: ArtifactMeta {
                model: "e2gcl".into(),
                dataset: "cora-sim".into(),
                scale: 0.25,
                seed: 42,
            },
            config: TrainConfig::default(),
            encoder,
            embeddings,
        }
    }

    #[test]
    fn round_trip_all_encoder_kinds() {
        for kind in [KIND_GCN, KIND_SGC, KIND_SAGE] {
            let a = sample(kind);
            let bytes = a.to_bytes().unwrap();
            let b = Artifact::from_bytes(&bytes).unwrap();
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.embeddings, b.embeddings);
            assert_eq!(a.encoder.params(), b.encoder.params());
            assert_eq!(a.encoder.kind(), b.encoder.kind());
            assert_eq!(a.encoder.receptive_hops(), b.encoder.receptive_hops());
            // Second serialisation is byte-identical.
            assert_eq!(bytes, b.to_bytes().unwrap());
        }
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = sample(KIND_GCN).to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = sample(KIND_GCN).to_bytes().unwrap();
        bytes[8] = 99;
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = sample(KIND_SAGE).to_bytes().unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample(KIND_SGC).to_bytes().unwrap();
        assert!(matches!(
            Artifact::from_bytes(&bytes[..bytes.len() - 3]),
            Err(ArtifactError::Truncated { .. })
        ));
        assert!(matches!(
            Artifact::from_bytes(&bytes[..10]),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = sample(KIND_GCN).to_bytes().unwrap();
        bytes.push(0);
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let a = sample(KIND_GCN);
        let path = std::env::temp_dir().join("e2gcl_artifact_unit_test.bin");
        a.save(&path).unwrap();
        let b = Artifact::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(a.embeddings, b.embeddings);
        assert_eq!(a.to_bytes().unwrap(), b.to_bytes().unwrap());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Artifact::load(Path::new("/nonexistent/definitely/missing.bin")).unwrap_err();
        assert!(matches!(err, ArtifactError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn save_leaves_no_temp_sibling_behind() {
        let a = sample(KIND_SGC);
        let dir = std::env::temp_dir();
        let path = dir.join("e2gcl_artifact_atomic_test.bin");
        a.save(&path).unwrap();
        let tmp = dir.join("e2gcl_artifact_atomic_test.bin.tmp");
        assert!(!tmp.exists(), "atomic save leaked its temp file");
        assert!(Artifact::load(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_is_quarantined_on_load() {
        let a = sample(KIND_GCN);
        let dir = std::env::temp_dir();
        let path = dir.join("e2gcl_artifact_torn_test.bin");
        let quarantined = dir.join("e2gcl_artifact_torn_test.bin.corrupt");
        let _ = std::fs::remove_file(&quarantined);
        let full = a.to_bytes().unwrap().len();
        a.save_torn(&path, full / 2).unwrap();

        let err = Artifact::load(&path).unwrap_err();
        match &err {
            ArtifactError::Quarantined {
                quarantined_to,
                cause,
            } => {
                assert_eq!(quarantined_to, &quarantined.display().to_string());
                assert!(
                    matches!(**cause, ArtifactError::Truncated { .. }),
                    "{cause}"
                );
            }
            other => panic!("expected Quarantined, got {other}"),
        }
        // The bad file was moved aside: the original path is gone, and the
        // next load fails fast as a plain missing-file Io error.
        assert!(!path.exists());
        assert!(quarantined.exists());
        assert!(matches!(Artifact::load(&path), Err(ArtifactError::Io(_))));
        let _ = std::fs::remove_file(&quarantined);
    }
}
