//! Inductive query engine: closed-form embedding of nodes via L-hop ego
//! subgraphs.
//!
//! E²GCL's Theorem-1 relaxation (`A_n^L X θ`) means an `L`-layer encoder's
//! embedding of node `v` depends only on nodes within `L` hops of `v`. The
//! engine exploits that: instead of a full-graph forward per query it runs
//! the frozen encoder over `v`'s `L`-hop ego net.
//!
//! **Exactness.** The ego adjacency is built with *full-graph* degrees, not
//! ego-local ones — the [`e2gcl_graph::view::GraphView`] contract, shared
//! with mini-batch training and spelled out in `DESIGN.md` §13. Interior
//! nodes (hop < L) then have exactly their full-graph adjacency rows;
//! frontier nodes (hop = L) have incomplete rows, but their hidden states
//! cannot propagate back to the centre within `L` layers. Because node
//! order, entry order (self-loop first, neighbours in ascending-column CSR
//! order) and every `f32` expression match `e2gcl_graph::norm`, the
//! centre's embedding is **bitwise identical** to the full-graph forward —
//! not merely within tolerance (verified in `tests/serving.rs`).
//!
//! Hot nodes are answered from an [`LruCache`]; cold nodes pay one ego
//! forward through a pooled scratch workspace (the PR-2 zero-alloc path).

use crate::lru::LruCache;
use crate::ServeError;
use e2gcl_graph::view::{subgraph_adjacency, GraphView};
use e2gcl_graph::{CsrGraph, SparseMatrix};
use e2gcl_linalg::Matrix;
use e2gcl_nn::{EncoderWorkspace, FrozenEncoder};
use std::sync::Mutex;

/// Default number of cached node embeddings.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The inductive serving engine for one artifact.
pub struct InductiveEngine {
    encoder: FrozenEncoder,
    graph: CsrGraph,
    features: Matrix,
    cache: Mutex<LruCache<usize, Vec<f32>>>,
    workspaces: Mutex<Vec<EncoderWorkspace>>,
}

impl InductiveEngine {
    /// Builds an engine over the graph/features the encoder was trained on.
    pub fn new(
        encoder: FrozenEncoder,
        graph: CsrGraph,
        features: Matrix,
    ) -> Result<Self, ServeError> {
        Self::with_cache_capacity(encoder, graph, features, DEFAULT_CACHE_CAPACITY)
    }

    /// [`Self::new`] with an explicit embedding-cache capacity.
    pub fn with_cache_capacity(
        encoder: FrozenEncoder,
        graph: CsrGraph,
        features: Matrix,
        cache_capacity: usize,
    ) -> Result<Self, ServeError> {
        if features.rows() != graph.num_nodes() || features.cols() != encoder.input_dim() {
            return Err(ServeError::DimensionMismatch {
                expected: encoder.input_dim(),
                actual: features.cols(),
            });
        }
        Ok(Self {
            encoder,
            graph,
            features,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            workspaces: Mutex::new(Vec::new()),
        })
    }

    /// The frozen encoder behind this engine.
    pub fn encoder(&self) -> &FrozenEncoder {
        &self.encoder
    }

    /// Number of nodes in the training graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Lifetime `(hits, misses)` of the embedding cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        lock(&self.cache).stats()
    }

    /// Embeds a training-graph node via its ego subgraph (cached).
    ///
    /// The result is bitwise-identical to the node's row of a full-graph
    /// forward — see the module docs for the argument.
    pub fn embed_node(&self, v: usize) -> Result<Vec<f32>, ServeError> {
        if v >= self.graph.num_nodes() {
            return Err(ServeError::NodeOutOfRange {
                node: v,
                num_nodes: self.graph.num_nodes(),
            });
        }
        if let Some(hit) = lock(&self.cache).get(&v) {
            return Ok(hit.clone());
        }
        let view = GraphView::ego(&self.graph, v, self.encoder.receptive_hops());
        let adj = view.normalized_adjacency(self.encoder.symmetric_norm());
        let x = view.features(&self.features);
        let center = view.local(v).expect("ego view contains its centre");
        let row = self.forward_center(&adj, &x, center);
        lock(&self.cache).put(v, row.clone());
        Ok(row)
    }

    /// Embeds a node *unseen at training time*, attached to the frozen graph
    /// by `neighbors` with features `x_new`. Equivalent to adding the node
    /// to the graph and running a full forward, at ego-subgraph cost.
    pub fn embed_attached(
        &self,
        neighbors: &[usize],
        x_new: &[f32],
    ) -> Result<Vec<f32>, ServeError> {
        if x_new.len() != self.encoder.input_dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.encoder.input_dim(),
                actual: x_new.len(),
            });
        }
        for &u in neighbors {
            if u >= self.graph.num_nodes() {
                return Err(ServeError::NodeOutOfRange {
                    node: u,
                    num_nodes: self.graph.num_nodes(),
                });
            }
        }
        let hops = self.encoder.receptive_hops();
        let mut anchors: Vec<usize> = neighbors.to_vec();
        anchors.sort_unstable();
        anchors.dedup();

        // Existing nodes within `hops` of the new node: its attachment
        // points plus everything within `hops - 1` of them.
        let mut nodes: Vec<usize> = Vec::new();
        if hops >= 1 {
            for &u in &anchors {
                nodes.push(u);
                if hops >= 2 {
                    nodes.extend(self.graph.khop_neighbors(u, hops - 1));
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        let m = nodes.len(); // local index of the new node

        // Induced edges among existing nodes, plus the attachment edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (local_u, &global_u) in nodes.iter().enumerate() {
            for &global_w in self.graph.neighbors(global_u) {
                let global_w = global_w as usize;
                if global_w <= global_u {
                    continue;
                }
                if let Ok(local_w) = nodes.binary_search(&global_w) {
                    edges.push((local_u, local_w));
                }
            }
        }
        for &u in &anchors {
            if let Ok(local_u) = nodes.binary_search(&u) {
                edges.push((local_u, m));
            }
        }
        let local = CsrGraph::from_edges(m + 1, &edges);

        // Degrees as they would be in the grown graph: attachment points
        // gain one edge, everyone else keeps their full-graph degree.
        let mut degrees: Vec<usize> = nodes.iter().map(|&g| self.graph.degree(g)).collect();
        for &u in &anchors {
            if let Ok(local_u) = nodes.binary_search(&u) {
                degrees[local_u] += 1;
            }
        }
        degrees.push(anchors.len());

        let adj = subgraph_adjacency(&local, &degrees, self.encoder.symmetric_norm());
        let mut x = self.features.select_rows(&nodes);
        x = x.vstack(&Matrix::from_vec(1, x_new.len(), x_new.to_vec()));
        Ok(self.forward_center(&adj, &x, m))
    }

    /// Runs the frozen forward through a pooled workspace and extracts one
    /// row.
    fn forward_center(&self, adj: &SparseMatrix, x: &Matrix, center: usize) -> Vec<f32> {
        let mut ws = lock(&self.workspaces)
            .pop()
            .unwrap_or_else(|| self.encoder.workspace());
        let row = self
            .encoder
            .embed_with(adj, x, &mut ws)
            .row(center)
            .to_vec();
        lock(&self.workspaces).push(ws);
        row
    }
}

/// Mutex lock that shrugs off poisoning — serving state is a cache, and a
/// panicked worker leaves it merely stale, not invalid.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2gcl_linalg::SeedRng;
    use e2gcl_nn::GcnEncoder;

    fn setup() -> (CsrGraph, Matrix, FrozenEncoder) {
        let mut rng = SeedRng::new(11);
        // A ring with chords so 2-hop ego nets are proper subgraphs.
        let n = 24;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
            if v % 3 == 0 {
                edges.push((v, (v + 7) % n));
            }
        }
        let g = CsrGraph::from_edges(n, &edges);
        let mut x = Matrix::zeros(n, 5);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let enc = FrozenEncoder::Gcn(GcnEncoder::new(&[5, 6, 3], &mut rng));
        (g, x, enc)
    }

    #[test]
    fn ego_forward_is_bitwise_equal_to_full_forward() {
        let (g, x, enc) = setup();
        let full = enc.embed(&enc.adjacency(&g), &x);
        let engine = InductiveEngine::new(enc, g.clone(), x).unwrap();
        for v in 0..g.num_nodes() {
            let got = engine.embed_node(v).unwrap();
            assert_eq!(got.as_slice(), full.row(v), "node {v}");
        }
    }

    #[test]
    fn cache_serves_repeats() {
        let (g, x, enc) = setup();
        let engine = InductiveEngine::new(enc, g, x).unwrap();
        let a = engine.embed_node(3).unwrap();
        let b = engine.embed_node(3).unwrap();
        assert_eq!(a, b);
        let (hits, misses) = engine.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn attached_node_matches_grown_graph_forward() {
        let (g, x, enc) = setup();
        let n = g.num_nodes();
        let neighbors = vec![0usize, 5, 13];
        let mut x_new = vec![0.0f32; 5];
        for (i, v) in x_new.iter_mut().enumerate() {
            *v = 0.1 * (i as f32 + 1.0);
        }
        // Reference: physically grow the graph and run a full forward.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if u > v {
                    edges.push((v, u));
                }
            }
        }
        for &u in &neighbors {
            edges.push((u, n));
        }
        let grown = CsrGraph::from_edges(n + 1, &edges);
        let x_grown = x.vstack(&Matrix::from_vec(1, 5, x_new.clone()));
        let full = enc.embed(&enc.adjacency(&grown), &x_grown);

        let engine = InductiveEngine::new(enc, g, x).unwrap();
        let got = engine.embed_attached(&neighbors, &x_new).unwrap();
        assert_eq!(got.as_slice(), full.row(n));
    }

    #[test]
    fn errors_are_typed() {
        let (g, x, enc) = setup();
        let n = g.num_nodes();
        let engine = InductiveEngine::new(enc, g, x).unwrap();
        assert!(matches!(
            engine.embed_node(n),
            Err(ServeError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            engine.embed_attached(&[0], &[1.0]),
            Err(ServeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            engine.embed_attached(&[n + 5], &[0.0; 5]),
            Err(ServeError::NodeOutOfRange { .. })
        ));
    }
}
