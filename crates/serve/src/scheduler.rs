//! Dynamic micro-batching in front of [`BatchServer`].
//!
//! A [`BatchServer`] amortises per-batch overhead (admission, histogram,
//! pool dispatch) across a batch, but something has to *form* batches out
//! of an arrival stream. [`MicroBatcher`] coalesces requests under a
//! latency budget: a batch flushes as soon as it reaches
//! [`SchedulerConfig::max_batch`] requests **or** the oldest pending
//! request has waited [`SchedulerConfig::max_wait_us`] — whichever comes
//! first. Under load, batches fill up and throughput wins; when traffic
//! is sparse, the deadline bounds the latency a lone request pays for
//! batching to `max_wait_us`.
//!
//! The batcher never reads time itself: callers pass `now` readings from
//! the server's [`Clock`](crate::Clock), so a virtual clock replays any
//! traffic trace deterministically (the loadgen and scheduler tests rely
//! on this). Flushing drains FIFO through [`BatchServer::serve`], which
//! keeps the PR 6 pipeline — bounded admission, deadline shedding,
//! degradation — governing every coalesced batch unchanged.

use crate::server::{BatchServer, Request, Response};
use serde::Serialize;
use std::collections::VecDeque;

/// Micro-batching policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SchedulerConfig {
    /// Flush as soon as this many requests are pending (min 1).
    pub max_batch: usize,
    /// Flush once the oldest pending request is this old, microseconds.
    /// `0` disables coalescing: every request flushes immediately.
    pub max_wait_us: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 500,
        }
    }
}

/// One request waiting for its batch.
#[derive(Clone, Debug)]
struct Pending {
    id: u64,
    arrival_us: u64,
    request: Request,
}

/// A served request: identity, timing and the server's answer.
#[derive(Clone, Debug)]
pub struct Completed {
    /// Submission id (monotonic per batcher).
    pub id: u64,
    /// When the request was submitted, clock microseconds.
    pub arrival_us: u64,
    /// When its batch finished, clock microseconds. Per-request latency is
    /// `completed_us - arrival_us`: queueing wait *plus* service time.
    pub completed_us: u64,
    /// The server's answer.
    pub response: Response,
}

/// Lifetime coalescing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SchedulerStats {
    /// Requests accepted by [`MicroBatcher::submit`].
    pub submitted: u64,
    /// Batches flushed to the server.
    pub batches: u64,
    /// Requests flushed (equals `submitted` once drained).
    pub flushed: u64,
    /// Largest batch flushed so far.
    pub max_batch_seen: usize,
}

impl SchedulerStats {
    /// Mean requests per flushed batch (0.0 before the first flush).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.flushed as f64 / self.batches as f64
        }
    }
}

/// Deadline-window request coalescer (module docs).
#[derive(Debug)]
pub struct MicroBatcher {
    config: SchedulerConfig,
    queue: VecDeque<Pending>,
    next_id: u64,
    stats: SchedulerStats,
}

impl MicroBatcher {
    /// A batcher with `config` (`max_batch` is clamped to at least 1).
    pub fn new(config: SchedulerConfig) -> Self {
        Self {
            config: SchedulerConfig {
                max_batch: config.max_batch.max(1),
                max_wait_us: config.max_wait_us,
            },
            queue: VecDeque::new(),
            next_id: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// The effective configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// Enqueues a request that arrived at `now_us`; returns its id.
    pub fn submit(&mut self, request: Request, now_us: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;
        self.queue.push_back(Pending {
            id,
            arrival_us: now_us,
            request,
        });
        id
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime coalescing counters.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// When the oldest pending request's wait budget expires (`None` when
    /// idle). Callers sleep/advance at most until this instant.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|p| p.arrival_us.saturating_add(self.config.max_wait_us))
    }

    /// True when a batch should flush at `now_us`: the queue holds a full
    /// `max_batch`, or the oldest request's deadline window has closed.
    pub fn ready(&self, now_us: u64) -> bool {
        if self.queue.len() >= self.config.max_batch {
            return true;
        }
        match self.next_deadline_us() {
            Some(deadline) => now_us >= deadline,
            None => false,
        }
    }

    /// Drains up to `max_batch` requests FIFO through `server.serve` and
    /// stamps each completion with the server clock. Empty when idle.
    pub fn flush(&mut self, server: &mut BatchServer) -> Vec<Completed> {
        let n = self.queue.len().min(self.config.max_batch);
        if n == 0 {
            return Vec::new();
        }
        let drained: Vec<Pending> = self.queue.drain(..n).collect();
        let requests: Vec<Request> = drained.iter().map(|p| p.request.clone()).collect();
        let responses = server.serve(&requests);
        let completed_us = server.clock().now_us();
        self.stats.batches += 1;
        self.stats.flushed += n as u64;
        self.stats.max_batch_seen = self.stats.max_batch_seen.max(n);
        drained
            .into_iter()
            .zip(responses)
            .map(|(p, response)| Completed {
                id: p.id,
                arrival_us: p.arrival_us,
                completed_us,
                response,
            })
            .collect()
    }

    /// [`Self::flush`] if [`Self::ready`] at the server clock's now;
    /// otherwise an empty vec.
    pub fn flush_if_ready(&mut self, server: &mut BatchServer) -> Vec<Completed> {
        if self.ready(server.clock().now_us()) {
            self.flush(server)
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Clock;
    use crate::store::EmbeddingStore;
    use e2gcl_linalg::Matrix;

    fn server() -> BatchServer {
        let mut m = Matrix::zeros(32, 4);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 31 + 7) % 19) as f32 / 19.0 - 0.5;
        }
        BatchServer::new(EmbeddingStore::new(m)).with_clock(Clock::virtual_at(0))
    }

    fn cfg(max_batch: usize, max_wait_us: u64) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            max_wait_us,
        }
    }

    #[test]
    fn fills_to_max_batch_under_load() {
        let mut s = server();
        let mut b = MicroBatcher::new(cfg(4, 1_000));
        for i in 0..4 {
            b.submit(Request::TopK { node: i, k: 3 }, 0);
        }
        assert!(b.ready(0), "full queue must be ready immediately");
        let done = b.flush(&mut s);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| c.response.is_ok()));
        assert_eq!(b.pending(), 0);
        assert_eq!(b.stats().max_batch_seen, 4);
    }

    #[test]
    fn lone_request_waits_out_its_window_then_flushes() {
        let mut s = server();
        let mut b = MicroBatcher::new(cfg(64, 500));
        let id = b.submit(Request::TopK { node: 1, k: 3 }, 100);
        assert!(!b.ready(100));
        assert!(!b.ready(599), "window is [arrival, arrival + max_wait]");
        assert_eq!(b.next_deadline_us(), Some(600));
        assert!(b.ready(600));
        s.clock().advance_us(600);
        let done = b.flush_if_ready(&mut s);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].arrival_us, 100);
        assert!(done[0].completed_us >= 600);
    }

    #[test]
    fn oversize_queue_drains_in_fifo_chunks() {
        let mut s = server();
        let mut b = MicroBatcher::new(cfg(3, 100));
        let ids: Vec<u64> = (0..7)
            .map(|i| b.submit(Request::Embedding { node: i }, i as u64))
            .collect();
        let first = b.flush(&mut s);
        assert_eq!(
            first.iter().map(|c| c.id).collect::<Vec<_>>(),
            ids[..3],
            "flush must be FIFO"
        );
        assert_eq!(b.pending(), 4);
        let second = b.flush(&mut s);
        assert_eq!(second.iter().map(|c| c.id).collect::<Vec<_>>(), ids[3..6]);
        let third = b.flush(&mut s);
        assert_eq!(third.len(), 1);
        assert_eq!(b.flush(&mut s).len(), 0, "empty flush is a no-op");
        let st = b.stats();
        assert_eq!((st.submitted, st.batches, st.flushed), (7, 3, 7));
        assert!((st.mean_batch() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_wait_flushes_each_request_immediately() {
        let mut b = MicroBatcher::new(cfg(64, 0));
        b.submit(Request::Embedding { node: 0 }, 42);
        assert!(b.ready(42), "max_wait_us 0 means no coalescing delay");
    }

    #[test]
    fn zero_max_batch_is_clamped_to_one() {
        let mut s = server();
        let mut b = MicroBatcher::new(cfg(0, 100));
        assert_eq!(b.config().max_batch, 1);
        b.submit(Request::Embedding { node: 0 }, 0);
        assert!(b.ready(0));
        assert_eq!(b.flush(&mut s).len(), 1);
    }

    #[test]
    fn composes_with_admission_queue_shedding() {
        use crate::runtime::RuntimeConfig;
        let mut s = server().with_runtime(RuntimeConfig {
            queue_capacity: 2,
            high_water: 2,
            ..RuntimeConfig::default()
        });
        let mut b = MicroBatcher::new(cfg(5, 100));
        for i in 0..5 {
            b.submit(Request::Embedding { node: i }, 0);
        }
        let done = b.flush(&mut s);
        let ok = done.iter().filter(|c| c.response.is_ok()).count();
        let shed = done
            .iter()
            .filter(|c| matches!(c.response, Response::Rejected(_)))
            .count();
        assert_eq!((ok, shed), (2, 3), "PR 6 admission must govern the batch");
        assert!(s.backpressure());
    }

    #[test]
    fn replay_on_virtual_clock_is_deterministic() {
        let run = || {
            let mut s = server();
            let mut b = MicroBatcher::new(cfg(4, 250));
            let mut trace = Vec::new();
            for i in 0..10usize {
                let now = (i as u64) * 100;
                let clock_now = s.clock().now_us();
                s.clock().advance_us(now.saturating_sub(clock_now));
                b.submit(Request::TopK { node: i % 8, k: 5 }, now);
                for c in b.flush_if_ready(&mut s) {
                    trace.push((c.id, c.arrival_us, c.completed_us));
                }
            }
            while b.pending() > 0 {
                let deadline = b.next_deadline_us().unwrap();
                let now = s.clock().now_us();
                s.clock().advance_us(deadline.saturating_sub(now));
                for c in b.flush_if_ready(&mut s) {
                    trace.push((c.id, c.arrival_us, c.completed_us));
                }
            }
            trace
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same trace + virtual clock → identical completions");
        assert_eq!(a.len(), 10);
    }
}
