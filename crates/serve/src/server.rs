//! Latency-instrumented, overload-tolerant batch request server.
//!
//! A [`BatchServer`] owns an [`EmbeddingStore`] (and optionally an
//! [`InductiveEngine`]) and answers batches of [`Request`]s. Each batch
//! passes through three phases:
//!
//! 1. **Admission** (sequential, deterministic): requests beyond the
//!    bounded queue capacity are shed as [`RejectCause::Overload`];
//!    requests whose estimated completion — queue-ahead work under the
//!    server's EWMA cost model, plus any fault-plan stall — exceeds their
//!    deadline budget are shed as [`RejectCause::DeadlineExceeded`]
//!    *before* any work is wasted on them. The wait estimate is a
//!    conservative single-worker serialisation of the queue, so admission
//!    decisions do not depend on the worker-pool size.
//! 2. **Execution**: admitted requests fan out over the rayon pool. The
//!    inductive path retries with doubling backoff (mirroring the
//!    trainer's `Backoff` guard) and, on persistent failure, degrades to
//!    the stored-embedding answer, marked `degraded: true`.
//! 3. **Accounting**: the batch's latency lands in a per-batch-size
//!    [`LatencyHistogram`], the EWMA cost model absorbs the observed
//!    per-query cost, and [`ShedStats`] counters advance.
//!
//! All scheduling reads one [`Clock`]; with [`Clock::virtual_at`] every
//! overload behaviour above is exactly reproducible in tests.

use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::index::IvfIndex;
use crate::inductive::InductiveEngine;
use crate::runtime::{Clock, ErrorKind, RejectCause, RuntimeConfig, ServeFaultPlan, ShedStats};
use crate::store::{EmbeddingStore, Hit};
use crate::{Artifact, ServeError};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One serving query.
#[derive(Clone, Debug)]
pub enum Request {
    /// The stored embedding of a training-graph node.
    Embedding {
        /// Node id.
        node: usize,
    },
    /// Top-`k` cosine neighbours of a stored node's embedding.
    TopK {
        /// Query node id.
        node: usize,
        /// Number of neighbours.
        k: usize,
    },
    /// Top-`k` neighbours of a node embedded *inductively* (ego-subgraph
    /// forward through the frozen encoder instead of the stored row).
    TopKInductive {
        /// Query node id.
        node: usize,
        /// Number of neighbours.
        k: usize,
    },
    /// Linear-probe class of a stored node's embedding.
    Classify {
        /// Query node id.
        node: usize,
    },
}

/// The answer to one [`Request`].
#[derive(Clone, Debug)]
pub enum Response {
    /// An embedding vector.
    Embedding(Vec<f32>),
    /// Ranked `(node, cosine)` hits. `degraded` marks an answer produced by
    /// the stored-embedding fallback after the inductive path failed
    /// persistently — correct rows, but without the inductive freshness the
    /// caller asked for.
    Hits {
        /// The ranked hits.
        hits: Vec<Hit>,
        /// True when answered via graceful degradation.
        degraded: bool,
    },
    /// A predicted class.
    Class(usize),
    /// The request was shed without being executed.
    Rejected(RejectCause),
    /// The query failed (per-query; the batch itself always completes).
    Failed {
        /// Structured failure category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// True for answered queries (not [`Response::Failed`] /
    /// [`Response::Rejected`]).
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Failed { .. } | Response::Rejected(_))
    }

    /// True when this answer came from the degraded fallback path.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Response::Hits { degraded: true, .. })
    }

    fn from_error(e: &ServeError) -> Response {
        Response::Failed {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// Per-job execution flags assigned deterministically at admission.
struct Job {
    /// Index into the arriving batch.
    idx: usize,
    /// Lifetime sequence number (keys the fault plan).
    seq: u64,
    /// Synthetic stall before execution, microseconds.
    stall_us: u64,
}

/// What one executed job reports back for stats accounting.
#[derive(Default)]
struct JobOutcome {
    retries: u64,
    degraded: bool,
    failed: bool,
}

/// EWMA weight of the newest per-query cost observation.
const COST_EWMA_ALPHA: f64 = 0.2;

/// Embedding store + optional inductive engine + latency accounting +
/// overload policy.
pub struct BatchServer {
    store: EmbeddingStore,
    index: Option<IvfIndex>,
    inductive: Option<InductiveEngine>,
    histograms: BTreeMap<usize, LatencyHistogram>,
    runtime: RuntimeConfig,
    clock: Clock,
    fault: ServeFaultPlan,
    fault_active: bool,
    artifact_seed: Option<u64>,
    seq: u64,
    stats: ShedStats,
    cost_ewma_us: f64,
    last_depth: usize,
}

impl BatchServer {
    /// A server over a pre-built store (no inductive path), with the
    /// permissive default [`RuntimeConfig`] and a wall clock.
    pub fn new(store: EmbeddingStore) -> Self {
        Self {
            store,
            index: None,
            inductive: None,
            histograms: BTreeMap::new(),
            runtime: RuntimeConfig::default(),
            clock: Clock::wall(),
            fault: ServeFaultPlan::default(),
            fault_active: false,
            artifact_seed: None,
            seq: 0,
            stats: ShedStats::default(),
            cost_ewma_us: 0.0,
            last_depth: 0,
        }
    }

    /// A server over a loaded artifact: stored embeddings answer similarity
    /// queries, the frozen encoder (over `graph`/`features`) answers
    /// inductive ones.
    pub fn from_artifact(
        artifact: &Artifact,
        graph: CsrGraph,
        features: Matrix,
    ) -> Result<Self, ServeError> {
        let store = EmbeddingStore::new(artifact.embeddings.clone());
        let inductive = InductiveEngine::new(artifact.encoder.clone(), graph, features)?;
        let mut server = Self::new(store);
        server.inductive = Some(inductive);
        server.artifact_seed = Some(artifact.meta.seed);
        Ok(server)
    }

    /// Replaces the runtime (admission/deadline/degradation) policy.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Replaces the scheduling clock (tests pass [`Clock::virtual_at`]).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Installs a fault plan. Seed-scoped plans only activate when their
    /// `only_seed` matches the served artifact's seed.
    pub fn with_fault_plan(mut self, plan: ServeFaultPlan) -> Self {
        self.fault_active = plan.is_active_for(self.artifact_seed);
        self.fault = plan;
        self
    }

    /// Attaches an [`IvfIndex`]: every top-k (stored *and* inductive)
    /// routes through ANN probe + exact re-rank instead of the brute-force
    /// scan. Fails with [`ServeError::IndexMismatch`] unless the index was
    /// built over byte-for-byte this store ([`IvfIndex::matches`]).
    pub fn with_index(mut self, mut index: IvfIndex) -> Result<Self, ServeError> {
        index.pack(&self.store)?;
        self.index = Some(index);
        Ok(self)
    }

    /// Detaches the ANN index, reverting top-k to brute force.
    pub fn clear_index(&mut self) -> Option<IvfIndex> {
        self.index.take()
    }

    /// The attached ANN index, if any.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Re-tunes the attached index's `nprobe` (no-op without an index).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        if let Some(index) = self.index.as_mut() {
            index.set_nprobe(nprobe);
        }
    }

    /// The underlying store (e.g. to fit a probe before serving).
    pub fn store_mut(&mut self) -> &mut EmbeddingStore {
        &mut self.store
    }

    /// The underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The inductive engine, when the server has one.
    pub fn inductive(&self) -> Option<&InductiveEngine> {
        self.inductive.as_ref()
    }

    /// The scheduling clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Lifetime shed/degrade/retry counters.
    pub fn stats(&self) -> ShedStats {
        self.stats
    }

    /// High-water backpressure signal: true when the last batch filled the
    /// admitted queue to `high_water` or beyond (or shed for overload).
    /// Load generators should throttle while this holds.
    pub fn backpressure(&self) -> bool {
        self.runtime.high_water > 0 && self.last_depth >= self.runtime.high_water
    }

    /// Answers a batch with each request under the runtime's default
    /// deadline budget. Per-query failures become [`Response::Failed`];
    /// shed requests become [`Response::Rejected`]; the batch's wall time
    /// lands in the histogram for `batch.len()`.
    pub fn serve(&mut self, batch: &[Request]) -> Vec<Response> {
        self.serve_deadline(batch, self.runtime.default_deadline_us)
    }

    /// [`Self::serve`] with an explicit per-request deadline budget
    /// (microseconds from batch arrival) overriding the default.
    pub fn serve_deadline(&mut self, batch: &[Request], deadline_us: Option<u64>) -> Vec<Response> {
        if batch.is_empty() {
            return Vec::new();
        }
        let start_us = self.clock.now_us();

        // Phase 1: admission (sequential — decisions are deterministic).
        let cap = if self.runtime.queue_capacity == 0 {
            batch.len()
        } else {
            self.runtime.queue_capacity
        };
        let mut responses: Vec<Option<Response>> = (0..batch.len()).map(|_| None).collect();
        let mut jobs: Vec<Job> = Vec::with_capacity(batch.len().min(cap));
        let mut est_queue_us = 0.0_f64;
        for (idx, _) in batch.iter().enumerate() {
            if jobs.len() >= cap {
                responses[idx] = Some(Response::Rejected(RejectCause::Overload));
                self.stats.shed_overload += 1;
                continue;
            }
            let seq = self.seq;
            let stall_us = if self.fault_active {
                self.fault.stall_us(seq)
            } else {
                0
            };
            let est_cost_us = self.cost_ewma_us + stall_us as f64;
            if let Some(d) = deadline_us {
                if est_queue_us + est_cost_us > d as f64 {
                    responses[idx] = Some(Response::Rejected(RejectCause::DeadlineExceeded));
                    self.stats.shed_deadline += 1;
                    continue;
                }
            }
            self.seq += 1;
            self.stats.admitted += 1;
            est_queue_us += est_cost_us;
            jobs.push(Job { idx, seq, stall_us });
        }
        self.last_depth = jobs.len();

        // Phase 2: execute admitted jobs on the worker pool. Fault flags
        // were fixed at admission, so parallel order cannot change them.
        let store = &self.store;
        let index = self.index.as_ref();
        let inductive = self.inductive.as_ref();
        let runtime = &self.runtime;
        let clock = &self.clock;
        let fault = if self.fault_active {
            Some(&self.fault)
        } else {
            None
        };
        let executed: Vec<(usize, Response, JobOutcome)> = jobs
            .par_iter()
            .map(|job| {
                if job.stall_us > 0 {
                    clock.advance_us(job.stall_us);
                }
                let (resp, outcome) = handle(
                    store,
                    index,
                    inductive,
                    runtime,
                    clock,
                    fault,
                    job,
                    &batch[job.idx],
                );
                (job.idx, resp, outcome)
            })
            .collect();

        // Phase 3: merge and account.
        let admitted = executed.len();
        for (idx, resp, outcome) in executed {
            self.stats.retries += outcome.retries;
            self.stats.degraded += u64::from(outcome.degraded);
            self.stats.failed += u64::from(outcome.failed);
            responses[idx] = Some(resp);
        }
        let elapsed_us = self.clock.now_us().saturating_sub(start_us);
        self.histograms
            .entry(batch.len())
            .or_default()
            .record(Duration::from_micros(elapsed_us));
        if admitted > 0 {
            let per_query = elapsed_us as f64 / admitted as f64;
            self.cost_ewma_us = if self.cost_ewma_us == 0.0 {
                per_query
            } else {
                (1.0 - COST_EWMA_ALPHA) * self.cost_ewma_us + COST_EWMA_ALPHA * per_query
            };
        }
        responses
            .into_iter()
            .map(|r| r.expect("every slot admitted or shed"))
            .collect()
    }

    /// `(batch size, latency summary)` per observed batch size, ascending.
    pub fn latency_report(&self) -> Vec<(usize, LatencySummary)> {
        self.histograms
            .iter()
            .map(|(&size, h)| (size, h.summary()))
            .collect()
    }
}

/// Exact top-k when no index is attached; ANN probe + exact re-rank when
/// one is. Works for stored rows and freshly-embedded inductive vectors
/// alike — the index only needs the *store* side to match.
fn top_k_route(
    store: &EmbeddingStore,
    index: Option<&IvfIndex>,
    query: &[f32],
    k: usize,
) -> Result<Vec<Hit>, ServeError> {
    match index {
        Some(ix) => ix.search(store, query, k),
        None => store.top_k(query, k),
    }
}

/// Executes one admitted request. The inductive path retries with doubling
/// backoff and degrades to the stored row on persistent failure.
#[allow(clippy::too_many_arguments)]
fn handle(
    store: &EmbeddingStore,
    index: Option<&IvfIndex>,
    inductive: Option<&InductiveEngine>,
    runtime: &RuntimeConfig,
    clock: &Clock,
    fault: Option<&ServeFaultPlan>,
    job: &Job,
    r: &Request,
) -> (Response, JobOutcome) {
    let mut outcome = JobOutcome::default();
    let result = match r {
        Request::Embedding { node } => store
            .embedding(*node)
            .map(|e| Response::Embedding(e.to_vec())),
        Request::TopK { node, k } => store
            .embedding(*node)
            .map(|e| e.to_vec())
            .and_then(|e| top_k_route(store, index, &e, *k))
            .map(|hits| Response::Hits {
                hits,
                degraded: false,
            }),
        Request::TopKInductive { node, k } => inductive_top_k(
            store,
            index,
            inductive,
            runtime,
            clock,
            fault,
            job,
            *node,
            *k,
            &mut outcome,
        ),
        Request::Classify { node } => store
            .embedding(*node)
            .map(|e| e.to_vec())
            .and_then(|e| store.classify(&e))
            .map(Response::Class),
    };
    match result {
        Ok(resp) => (resp, outcome),
        Err(e) => {
            outcome.failed = true;
            (Response::from_error(&e), outcome)
        }
    }
}

/// The resilient inductive path: retry with doubling backoff, then degrade
/// to the stored row (`degraded: true`) if the store still covers the node.
#[allow(clippy::too_many_arguments)]
fn inductive_top_k(
    store: &EmbeddingStore,
    index: Option<&IvfIndex>,
    inductive: Option<&InductiveEngine>,
    runtime: &RuntimeConfig,
    clock: &Clock,
    fault: Option<&ServeFaultPlan>,
    job: &Job,
    node: usize,
    k: usize,
    outcome: &mut JobOutcome,
) -> Result<Response, ServeError> {
    let engine = match inductive {
        Some(e) => e,
        None => return Err(ServeError::NoInductiveEngine),
    };
    let mut attempt = 0usize;
    let embedded = loop {
        let injected = fault.is_some_and(|p| p.inductive_fails(job.seq, attempt));
        let result = if injected {
            Err(ServeError::FaultInjected { seq: job.seq })
        } else {
            engine.embed_node(node)
        };
        match result {
            Ok(e) => break Ok(e),
            // Bad input cannot be retried into a good answer.
            Err(e @ ServeError::NodeOutOfRange { .. }) => break Err(e),
            Err(e) => {
                if attempt >= runtime.inductive_retries {
                    break Err(e);
                }
                clock.advance_us(runtime.retry_backoff_us << attempt.min(16));
                attempt += 1;
                outcome.retries += 1;
            }
        }
    };
    match embedded {
        Ok(e) => top_k_route(store, index, &e, k).map(|hits| Response::Hits {
            hits,
            degraded: false,
        }),
        Err(err) => {
            if runtime.degrade_to_stored {
                if let Ok(row) = store.embedding(node).map(|e| e.to_vec()) {
                    let hits = top_k_route(store, index, &row, k)?;
                    outcome.degraded = true;
                    return Ok(Response::Hits {
                        hits,
                        degraded: true,
                    });
                }
            }
            Err(err)
        }
    }
}

/// Knobs for [`run_latency_bench`].
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Batch sizes to measure (one histogram each).
    pub batch_sizes: Vec<usize>,
    /// Batches per batch size.
    pub rounds: usize,
    /// `k` of the top-k queries.
    pub k: usize,
    /// Every `inductive_every`-th query goes through the inductive path
    /// (0 disables inductive queries).
    pub inductive_every: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            batch_sizes: vec![1, 32, 256],
            rounds: 50,
            k: 10,
            inductive_every: 4,
        }
    }
}

/// Latency/throughput measurements for one batch size.
#[derive(Clone, Debug, Serialize)]
pub struct BatchBenchReport {
    /// Requests per batch.
    pub batch_size: usize,
    /// Batches served.
    pub rounds: usize,
    /// Total requests served.
    pub queries: usize,
    /// Per-batch latency percentiles and moments (µs).
    pub latency: LatencySummary,
    /// Requests per second across the whole run.
    pub throughput_qps: f64,
}

/// Drives deterministic top-k/inductive query batches through the server
/// and reports per-batch-size latency percentiles and throughput.
pub fn run_latency_bench(
    server: &mut BatchServer,
    opts: &BenchOptions,
    rng: &mut SeedRng,
) -> Vec<BatchBenchReport> {
    let n = server.store().len().max(1);
    let mut reports = Vec::with_capacity(opts.batch_sizes.len());
    for &batch_size in &opts.batch_sizes {
        let mut hist = LatencyHistogram::new();
        let mut queries = 0usize;
        let run_start = Instant::now();
        for _ in 0..opts.rounds {
            let batch: Vec<Request> = (0..batch_size)
                .map(|i| {
                    let node = rng.below(n);
                    if opts.inductive_every > 0 && i % opts.inductive_every == 0 {
                        Request::TopKInductive { node, k: opts.k }
                    } else {
                        Request::TopK { node, k: opts.k }
                    }
                })
                .collect();
            let t0 = Instant::now();
            let responses = server.serve(&batch);
            hist.record(t0.elapsed());
            queries += responses.len();
        }
        let total_secs = run_start.elapsed().as_secs_f64().max(1e-9);
        reports.push(BatchBenchReport {
            batch_size,
            rounds: opts.rounds,
            queries,
            latency: hist.summary(),
            throughput_qps: queries as f64 / total_secs,
        });
    }
    reports
}

/// Knobs for [`run_overload_bench`]: a load generator that deliberately
/// offers more work than the admission queue accepts.
#[derive(Clone, Debug)]
pub struct OverloadOptions {
    /// Bursts to offer.
    pub rounds: usize,
    /// Requests per burst at full throttle (set above the server's queue
    /// capacity to saturate it).
    pub burst: usize,
    /// `k` of the top-k queries.
    pub k: usize,
    /// Every `inductive_every`-th query goes inductive (0 disables).
    pub inductive_every: usize,
    /// Per-request deadline budget for the offered load, µs.
    pub deadline_us: Option<u64>,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        Self {
            rounds: 40,
            burst: 64,
            k: 10,
            inductive_every: 4,
            deadline_us: None,
        }
    }
}

/// What the saturated server did under the offered load.
#[derive(Clone, Debug, Serialize)]
pub struct OverloadReport {
    /// Requests offered across all bursts.
    pub offered: u64,
    /// Requests admitted and executed.
    pub admitted: u64,
    /// Requests shed: admission queue full.
    pub shed_overload: u64,
    /// Requests shed: deadline unmeetable at admission.
    pub shed_deadline: u64,
    /// Queries answered via the degraded fallback.
    pub degraded: u64,
    /// Inductive retry attempts.
    pub retries: u64,
    /// Queries that returned `Failed`.
    pub failed: u64,
    /// Bursts during which the backpressure signal was up.
    pub backpressure_rounds: usize,
    /// Bursts the generator throttled (halved) in response.
    pub throttled_rounds: usize,
    /// Per-burst latency under saturation (µs) — p99 is the headline.
    pub latency: LatencySummary,
}

/// Floods `server` with bursts of top-k/inductive queries, throttling to
/// half load whenever the backpressure signal is up, and reports shed
/// counts and saturated-tail latency. Reads the server's own [`Clock`], so
/// a virtual-clock server yields a fully deterministic report.
pub fn run_overload_bench(
    server: &mut BatchServer,
    opts: &OverloadOptions,
    rng: &mut SeedRng,
) -> OverloadReport {
    let n = server.store().len().max(1);
    let before = server.stats();
    let mut hist = LatencyHistogram::new();
    let mut offered = 0u64;
    let mut backpressure_rounds = 0usize;
    let mut throttled_rounds = 0usize;
    for _ in 0..opts.rounds {
        let mut size = opts.burst.max(1);
        if server.backpressure() {
            backpressure_rounds += 1;
            size = (size / 2).max(1);
            throttled_rounds += 1;
        }
        let batch: Vec<Request> = (0..size)
            .map(|i| {
                let node = rng.below(n);
                if opts.inductive_every > 0 && i % opts.inductive_every == 0 {
                    Request::TopKInductive { node, k: opts.k }
                } else {
                    Request::TopK { node, k: opts.k }
                }
            })
            .collect();
        offered += batch.len() as u64;
        let t0 = server.clock().now_us();
        let _ = server.serve_deadline(&batch, opts.deadline_us);
        let elapsed = server.clock().now_us().saturating_sub(t0);
        hist.record(Duration::from_micros(elapsed));
    }
    let after = server.stats();
    OverloadReport {
        offered,
        admitted: after.admitted - before.admitted,
        shed_overload: after.shed_overload - before.shed_overload,
        shed_deadline: after.shed_deadline - before.shed_deadline,
        degraded: after.degraded - before.degraded,
        retries: after.retries - before.retries,
        failed: after.failed - before.failed,
        backpressure_rounds,
        throttled_rounds,
        latency: hist.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> BatchServer {
        let mut m = Matrix::zeros(16, 4);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 23) as f32 / 23.0 - 0.5;
        }
        BatchServer::new(EmbeddingStore::new(m))
    }

    #[test]
    fn serves_mixed_batch_with_per_query_failures() {
        let mut s = server();
        let batch = vec![
            Request::TopK { node: 0, k: 3 },
            Request::Embedding { node: 5 },
            Request::TopK { node: 999, k: 3 }, // out of range
            Request::Classify { node: 1 },     // no probe fitted
            Request::TopKInductive { node: 0, k: 3 }, // no inductive engine
        ];
        let responses = s.serve(&batch);
        assert_eq!(responses.len(), 5);
        assert!(responses[0].is_ok());
        assert!(matches!(&responses[0], Response::Hits { hits, .. } if hits.len() == 3));
        assert!(responses[1].is_ok());
        assert!(matches!(
            &responses[2],
            Response::Failed {
                kind: ErrorKind::NodeOutOfRange,
                ..
            }
        ));
        assert!(matches!(
            &responses[3],
            Response::Failed {
                kind: ErrorKind::NoProbe,
                ..
            }
        ));
        assert!(matches!(
            &responses[4],
            Response::Failed {
                kind: ErrorKind::NoInductiveEngine,
                ..
            }
        ));
        assert_eq!(s.stats().failed, 3);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut s = server();
        assert!(s.serve(&[]).is_empty());
        assert!(s.latency_report().is_empty());
        assert_eq!(s.stats(), ShedStats::default());
    }

    #[test]
    fn k_zero_and_k_beyond_store_are_answered() {
        let mut s = server();
        let n = s.store().len();
        let responses = s.serve(&[
            Request::TopK { node: 0, k: 0 },
            Request::TopK { node: 0, k: n + 50 },
        ]);
        assert!(matches!(&responses[0], Response::Hits { hits, .. } if hits.is_empty()));
        assert!(matches!(&responses[1], Response::Hits { hits, .. } if hits.len() == n));
    }

    #[test]
    fn overload_sheds_typed_rejections_beyond_queue_capacity() {
        let mut s = server().with_runtime(RuntimeConfig {
            queue_capacity: 2,
            high_water: 2,
            ..RuntimeConfig::default()
        });
        let batch = vec![Request::Embedding { node: 0 }; 5];
        let responses = s.serve(&batch);
        let ok = responses.iter().filter(|r| r.is_ok()).count();
        let shed = responses
            .iter()
            .filter(|r| matches!(r, Response::Rejected(RejectCause::Overload)))
            .count();
        assert_eq!((ok, shed), (2, 3));
        // First-come-first-admitted: the head of the batch is served.
        assert!(responses[0].is_ok() && responses[1].is_ok());
        let stats = s.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed_overload, 3);
        assert!(s.backpressure(), "full queue must raise backpressure");
        // A small batch afterwards drops the signal.
        s.serve(&[Request::Embedding { node: 0 }]);
        assert!(!s.backpressure());
    }

    #[test]
    fn deadline_pressure_sheds_deterministically_on_virtual_clock() {
        let mut s = server()
            .with_clock(Clock::virtual_at(0))
            .with_fault_plan(ServeFaultPlan {
                slow_every: 1, // every query stalls
                slow_us: 1_000,
                ..ServeFaultPlan::default()
            });
        // Prime the cost model: one undeadlined batch of stalled queries
        // teaches the EWMA that a query costs ~1000 µs.
        s.serve(&[
            Request::Embedding { node: 0 },
            Request::Embedding { node: 1 },
        ]);
        assert!(s.cost_ewma_us >= 999.0, "ewma {}", s.cost_ewma_us);
        // A deadline below one query's cost: everything is shed up front.
        let responses = s.serve_deadline(&vec![Request::Embedding { node: 0 }; 4], Some(500));
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Rejected(RejectCause::DeadlineExceeded))));
        assert_eq!(s.stats().shed_deadline, 4);
        // A roomy deadline admits the head of the queue and sheds the tail
        // once the estimated queue wait crosses the budget.
        let responses = s.serve_deadline(&vec![Request::Embedding { node: 0 }; 4], Some(2_500));
        let ok = responses.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 1, "head of queue should fit the budget");
        assert!(
            responses
                .iter()
                .skip(ok)
                .all(|r| matches!(r, Response::Rejected(RejectCause::DeadlineExceeded))),
            "tail should be shed: {responses:?}"
        );
    }

    #[test]
    fn latency_report_tracks_batch_sizes() {
        let mut s = server();
        for _ in 0..3 {
            s.serve(&[Request::Embedding { node: 0 }]);
        }
        s.serve(&vec![Request::Embedding { node: 1 }; 4]);
        let report = s.latency_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, 1);
        assert_eq!(report[0].1.count, 3);
        assert_eq!(report[1].0, 4);
        assert_eq!(report[1].1.count, 1);
    }

    #[test]
    fn bench_runner_reports_every_batch_size() {
        let mut s = server();
        let opts = BenchOptions {
            batch_sizes: vec![1, 8],
            rounds: 5,
            k: 3,
            inductive_every: 0, // no engine attached
        };
        let mut rng = SeedRng::new(3);
        let reports = run_latency_bench(&mut s, &opts, &mut rng);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.queries, r.batch_size * r.rounds);
            assert_eq!(r.latency.count, r.rounds);
            assert!(r.throughput_qps > 0.0);
            assert!(r.latency.p99_us >= r.latency.p50_us);
        }
    }

    #[test]
    fn attached_index_serves_top_k_and_rejects_foreign_stores() {
        use crate::index::{IvfConfig, IvfIndex};
        let mut m = Matrix::zeros(64, 4);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 41 + 3) % 17) as f32 / 17.0 - 0.5;
        }
        let store = EmbeddingStore::new(m);
        let cfg = IvfConfig {
            nlist: 8,
            nprobe: 8, // full probe → answers must equal brute force
            train_sample: 64,
            kmeans_iters: 3,
            seed: 1,
        };
        let index = IvfIndex::build(&store, cfg).unwrap();

        // An index built over a *different* store is refused at attach.
        let other = EmbeddingStore::new(Matrix::zeros(64, 4));
        let err = match BatchServer::new(other).with_index(index.clone()) {
            Err(e) => e,
            Ok(_) => panic!("foreign store must be rejected at attach"),
        };
        assert!(matches!(err, ServeError::IndexMismatch { .. }), "{err}");

        let mut brute = BatchServer::new(EmbeddingStore::new(Matrix::from_rows(
            &(0..64)
                .map(|r| store.embedding(r).unwrap())
                .collect::<Vec<_>>(),
        )));
        let mut indexed = BatchServer::new(EmbeddingStore::new(Matrix::from_rows(
            &(0..64)
                .map(|r| store.embedding(r).unwrap())
                .collect::<Vec<_>>(),
        )))
        .with_index(index)
        .unwrap();
        assert!(indexed.index().is_some());
        let batch = vec![
            Request::TopK { node: 0, k: 5 },
            Request::TopK { node: 31, k: 5 },
            Request::TopK { node: 63, k: 5 },
        ];
        let a = brute.serve(&batch);
        let b = indexed.serve(&batch);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Response::Hits { hits: hx, .. }, Response::Hits { hits: hy, .. }) => {
                    assert_eq!(hx, hy, "full-probe ANN must equal brute force");
                }
                other => panic!("unexpected responses {other:?}"),
            }
        }
        // nprobe can be re-tuned in place.
        indexed.set_nprobe(2);
        assert_eq!(indexed.index().unwrap().nprobe(), 2);
        assert!(indexed.clear_index().is_some());
        assert!(indexed.index().is_none());
    }

    #[test]
    fn overload_bench_saturates_and_throttles() {
        let mut s = server()
            .with_clock(Clock::virtual_at(0))
            .with_runtime(RuntimeConfig {
                queue_capacity: 4,
                high_water: 4,
                ..RuntimeConfig::default()
            })
            .with_fault_plan(ServeFaultPlan {
                slow_every: 2,
                slow_us: 200,
                ..ServeFaultPlan::default()
            });
        let opts = OverloadOptions {
            rounds: 10,
            burst: 16,
            k: 3,
            inductive_every: 0,
            deadline_us: None,
        };
        let mut rng = SeedRng::new(9);
        let report = run_overload_bench(&mut s, &opts, &mut rng);
        assert!(report.shed_overload > 0, "{report:?}");
        assert_eq!(report.offered, report.admitted + report.shed_overload);
        assert!(report.throttled_rounds > 0, "backpressure must throttle");
        assert!(report.latency.p99_us > 0.0);
        // Virtual clock + seeded rng → byte-identical re-run.
        let mut s2 = server()
            .with_clock(Clock::virtual_at(0))
            .with_runtime(RuntimeConfig {
                queue_capacity: 4,
                high_water: 4,
                ..RuntimeConfig::default()
            })
            .with_fault_plan(ServeFaultPlan {
                slow_every: 2,
                slow_us: 200,
                ..ServeFaultPlan::default()
            });
        let report2 = run_overload_bench(&mut s2, &opts, &mut SeedRng::new(9));
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&report2).unwrap(),
            "overload bench must be deterministic on a virtual clock"
        );
    }
}
