//! Latency-instrumented batch request server.
//!
//! A [`BatchServer`] owns an [`EmbeddingStore`] (and optionally an
//! [`InductiveEngine`]) and answers batches of [`Request`]s. Each batch
//! fans out over the vendored rayon worker pool and records one wall-clock
//! sample in a per-batch-size [`LatencyHistogram`], so p50/p95/p99 can be
//! reported per batch size — the serving-trajectory numbers the bench bin
//! writes to `BENCH_serve.json`.

use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::inductive::InductiveEngine;
use crate::store::{EmbeddingStore, Hit};
use crate::{Artifact, ServeError};
use e2gcl_graph::CsrGraph;
use e2gcl_linalg::{Matrix, SeedRng};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One serving query.
#[derive(Clone, Debug)]
pub enum Request {
    /// The stored embedding of a training-graph node.
    Embedding {
        /// Node id.
        node: usize,
    },
    /// Top-`k` cosine neighbours of a stored node's embedding.
    TopK {
        /// Query node id.
        node: usize,
        /// Number of neighbours.
        k: usize,
    },
    /// Top-`k` neighbours of a node embedded *inductively* (ego-subgraph
    /// forward through the frozen encoder instead of the stored row).
    TopKInductive {
        /// Query node id.
        node: usize,
        /// Number of neighbours.
        k: usize,
    },
    /// Linear-probe class of a stored node's embedding.
    Classify {
        /// Query node id.
        node: usize,
    },
}

/// The answer to one [`Request`].
#[derive(Clone, Debug)]
pub enum Response {
    /// An embedding vector.
    Embedding(Vec<f32>),
    /// Ranked `(node, cosine)` hits.
    Hits(Vec<Hit>),
    /// A predicted class.
    Class(usize),
    /// The query failed (per-query; the batch itself always completes).
    Failed(String),
}

impl Response {
    /// True unless this is a [`Response::Failed`].
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Failed(_))
    }
}

/// Embedding store + optional inductive engine + latency accounting.
pub struct BatchServer {
    store: EmbeddingStore,
    inductive: Option<InductiveEngine>,
    histograms: BTreeMap<usize, LatencyHistogram>,
}

impl BatchServer {
    /// A server over a pre-built store (no inductive path).
    pub fn new(store: EmbeddingStore) -> Self {
        Self {
            store,
            inductive: None,
            histograms: BTreeMap::new(),
        }
    }

    /// A server over a loaded artifact: stored embeddings answer similarity
    /// queries, the frozen encoder (over `graph`/`features`) answers
    /// inductive ones.
    pub fn from_artifact(
        artifact: &Artifact,
        graph: CsrGraph,
        features: Matrix,
    ) -> Result<Self, ServeError> {
        let store = EmbeddingStore::new(artifact.embeddings.clone());
        let inductive = InductiveEngine::new(artifact.encoder.clone(), graph, features)?;
        Ok(Self {
            store,
            inductive: Some(inductive),
            histograms: BTreeMap::new(),
        })
    }

    /// The underlying store (e.g. to fit a probe before serving).
    pub fn store_mut(&mut self) -> &mut EmbeddingStore {
        &mut self.store
    }

    /// The underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The inductive engine, when the server has one.
    pub fn inductive(&self) -> Option<&InductiveEngine> {
        self.inductive.as_ref()
    }

    /// Answers a batch of requests, fanning out over the worker pool.
    /// Per-query failures become [`Response::Failed`]; the batch's wall
    /// time lands in the histogram for `batch.len()`.
    pub fn serve(&mut self, batch: &[Request]) -> Vec<Response> {
        let start = Instant::now();
        let store = &self.store;
        let inductive = self.inductive.as_ref();
        let responses: Vec<Response> = batch
            .par_iter()
            .map(|r| handle(store, inductive, r))
            .collect();
        let elapsed = start.elapsed();
        self.histograms
            .entry(batch.len())
            .or_default()
            .record(elapsed);
        responses
    }

    /// `(batch size, latency summary)` per observed batch size, ascending.
    pub fn latency_report(&self) -> Vec<(usize, LatencySummary)> {
        self.histograms
            .iter()
            .map(|(&size, h)| (size, h.summary()))
            .collect()
    }
}

fn handle(store: &EmbeddingStore, inductive: Option<&InductiveEngine>, r: &Request) -> Response {
    let result = match r {
        Request::Embedding { node } => store
            .embedding(*node)
            .map(|e| Response::Embedding(e.to_vec())),
        Request::TopK { node, k } => store
            .embedding(*node)
            .map(|e| e.to_vec())
            .and_then(|e| store.top_k(&e, *k))
            .map(Response::Hits),
        Request::TopKInductive { node, k } => match inductive {
            None => Err(ServeError::NoInductiveEngine),
            Some(engine) => engine
                .embed_node(*node)
                .and_then(|e| store.top_k(&e, *k))
                .map(Response::Hits),
        },
        Request::Classify { node } => store
            .embedding(*node)
            .map(|e| e.to_vec())
            .and_then(|e| store.classify(&e))
            .map(Response::Class),
    };
    match result {
        Ok(resp) => resp,
        Err(e) => Response::Failed(e.to_string()),
    }
}

/// Knobs for [`run_latency_bench`].
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Batch sizes to measure (one histogram each).
    pub batch_sizes: Vec<usize>,
    /// Batches per batch size.
    pub rounds: usize,
    /// `k` of the top-k queries.
    pub k: usize,
    /// Every `inductive_every`-th query goes through the inductive path
    /// (0 disables inductive queries).
    pub inductive_every: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            batch_sizes: vec![1, 32, 256],
            rounds: 50,
            k: 10,
            inductive_every: 4,
        }
    }
}

/// Latency/throughput measurements for one batch size.
#[derive(Clone, Debug, Serialize)]
pub struct BatchBenchReport {
    /// Requests per batch.
    pub batch_size: usize,
    /// Batches served.
    pub rounds: usize,
    /// Total requests served.
    pub queries: usize,
    /// Per-batch latency percentiles and moments (µs).
    pub latency: LatencySummary,
    /// Requests per second across the whole run.
    pub throughput_qps: f64,
}

/// Drives deterministic top-k/inductive query batches through the server
/// and reports per-batch-size latency percentiles and throughput.
pub fn run_latency_bench(
    server: &mut BatchServer,
    opts: &BenchOptions,
    rng: &mut SeedRng,
) -> Vec<BatchBenchReport> {
    let n = server.store().len().max(1);
    let mut reports = Vec::with_capacity(opts.batch_sizes.len());
    for &batch_size in &opts.batch_sizes {
        let mut hist = LatencyHistogram::new();
        let mut queries = 0usize;
        let run_start = Instant::now();
        for _ in 0..opts.rounds {
            let batch: Vec<Request> = (0..batch_size)
                .map(|i| {
                    let node = rng.below(n);
                    if opts.inductive_every > 0 && i % opts.inductive_every == 0 {
                        Request::TopKInductive { node, k: opts.k }
                    } else {
                        Request::TopK { node, k: opts.k }
                    }
                })
                .collect();
            let t0 = Instant::now();
            let responses = server.serve(&batch);
            hist.record(t0.elapsed());
            queries += responses.len();
        }
        let total_secs = run_start.elapsed().as_secs_f64().max(1e-9);
        reports.push(BatchBenchReport {
            batch_size,
            rounds: opts.rounds,
            queries,
            latency: hist.summary(),
            throughput_qps: queries as f64 / total_secs,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> BatchServer {
        let mut m = Matrix::zeros(16, 4);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 23) as f32 / 23.0 - 0.5;
        }
        BatchServer::new(EmbeddingStore::new(m))
    }

    #[test]
    fn serves_mixed_batch_with_per_query_failures() {
        let mut s = server();
        let batch = vec![
            Request::TopK { node: 0, k: 3 },
            Request::Embedding { node: 5 },
            Request::TopK { node: 999, k: 3 }, // out of range
            Request::Classify { node: 1 },     // no probe fitted
            Request::TopKInductive { node: 0, k: 3 }, // no inductive engine
        ];
        let responses = s.serve(&batch);
        assert_eq!(responses.len(), 5);
        assert!(responses[0].is_ok());
        assert!(matches!(&responses[0], Response::Hits(h) if h.len() == 3));
        assert!(responses[1].is_ok());
        assert!(!responses[2].is_ok());
        assert!(!responses[3].is_ok());
        assert!(!responses[4].is_ok());
    }

    #[test]
    fn latency_report_tracks_batch_sizes() {
        let mut s = server();
        for _ in 0..3 {
            s.serve(&[Request::Embedding { node: 0 }]);
        }
        s.serve(&vec![Request::Embedding { node: 1 }; 4]);
        let report = s.latency_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, 1);
        assert_eq!(report[0].1.count, 3);
        assert_eq!(report[1].0, 4);
        assert_eq!(report[1].1.count, 1);
    }

    #[test]
    fn bench_runner_reports_every_batch_size() {
        let mut s = server();
        let opts = BenchOptions {
            batch_sizes: vec![1, 8],
            rounds: 5,
            k: 3,
            inductive_every: 0, // no engine attached
        };
        let mut rng = SeedRng::new(3);
        let reports = run_latency_bench(&mut s, &opts, &mut rng);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.queries, r.batch_size * r.rounds);
            assert_eq!(r.latency.count, r.rounds);
            assert!(r.throughput_qps > 0.0);
            assert!(r.latency.p99_us >= r.latency.p50_us);
        }
    }
}
