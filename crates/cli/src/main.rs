//! `e2gcl` — command-line interface for the E²GCL reproduction.
//!
//! ```text
//! e2gcl datasets                               list the dataset analogs
//! e2gcl pretrain  --dataset cora-sim [...]     pre-train, save embeddings
//! e2gcl evaluate  --dataset cora-sim [...]     pre-train + linear probe
//! e2gcl select    --dataset cora-sim [...]     run the Alg. 2 selector
//! e2gcl view      --dataset cora-sim --node 5  sample an Alg. 3 ego view
//! e2gcl train     --save model.e2gcl [...]     pre-train, save a serving artifact
//! e2gcl query     --artifact model.e2gcl [...] top-k similarity over an artifact
//! e2gcl build-index --artifact model.e2gcl     build + save a deterministic IVF index
//! e2gcl serve-bench [...]                      batch-serving latency percentiles
//! e2gcl kernels [--tune kernel_tune.json]      kernel dispatch state / autotuner
//! ```
//!
//! Options accept both `--flag value` and `--flag=value`.

mod args;
mod commands;

fn main() {
    // Fail fast on an invalid E2GCL_KERNEL_CONFIG (unknown value, missing or
    // corrupt tune file, feature mismatch) instead of silently running on
    // the fallback kernels. Implicit ./kernel_tune.json problems are
    // non-fatal: they are quarantined/ignored and reported by `kernels`.
    if let Some(err) = e2gcl_linalg::dispatch::startup_error() {
        eprintln!("e2gcl: kernel config error: {err}");
        eprintln!("{}", e2gcl_linalg::dispatch::CONFIG_USAGE);
        std::process::exit(2);
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("datasets") => commands::datasets(),
        Some("pretrain") => commands::pretrain(&argv[1..]),
        Some("evaluate") => commands::evaluate(&argv[1..]),
        Some("select") => commands::select(&argv[1..]),
        Some("view") => commands::view(&argv[1..]),
        Some("linkpred") => commands::linkpred(&argv[1..]),
        Some("graphcls") => commands::graphcls(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("query") => commands::query(&argv[1..]),
        Some("build-index") => commands::build_index(&argv[1..]),
        Some("serve-bench") => commands::serve_bench(&argv[1..]),
        Some("kernels") => commands::kernels(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "e2gcl — Efficient and Expressive Contrastive Learning on GNNs (ICDE 2024 reproduction)

USAGE:
    e2gcl <command> [options]

COMMANDS:
    datasets    list available dataset analogs and their statistics
    pretrain    pre-train a model and write node embeddings to JSON
    evaluate    pre-train + evaluate with the paper's linear-probe protocol
    select      run the Alg. 2 representative-node selector
    view        sample one Alg. 3 positive ego view for a node
    linkpred    pre-train on training edges, evaluate link prediction
    graphcls    pre-train on a multi-graph collection, classify graphs
    train       pre-train and save a serving artifact (encoder + embeddings)
    query       answer top-k similarity queries against a saved artifact
    build-index build a deterministic IVF ANN index over an artifact's store
    serve-bench measure batch-serving latency percentiles (p50/p95/p99)
    kernels     show dense-kernel dispatch state (CPU features, path, tiles)
    help        show this message

ENVIRONMENT:
    E2GCL_KERNEL_CONFIG  scalar | avx2 | <path to kernel_tune.json> — forces
                         the dense-kernel dispatch path; unset probes
                         ./kernel_tune.json, else detected defaults

COMMON OPTIONS (accepted as `--flag value` or `--flag=value`):
    --dataset <name>     dataset analog (default cora-sim; see `e2gcl datasets`)
    --scale <f64>        fraction of the analog's full size (default 0.25)
    --model <name>       E2GCL | GRACE | GCA | MVGRL | BGRL | AFGRL | DGI |
                         GAE | VGAE | ADGCL | DW | N2V      (default E2GCL)
    --epochs <n>         pre-training epochs (default 30)
    --seed <u64>         RNG seed (default 0)
    --checkpoint <path>  durable training checkpoint path (off by default)
    --checkpoint-every <n>  epochs between durable checkpoints (default 5)
    --resume <bool>      resume from --checkpoint if present (default false)
    --minibatch <bool>   neighbour-sampled mini-batch training — E2GCL and
                         GRACE/GCA only (default false)
    --batch-nodes <n>    seed nodes per mini-batch (default 1024)
    --fanout <n>         neighbours kept per node per hop; 0 = unlimited
                         (default 0)
    --loss <name>        contrastive loss strategy: full | smallneg |
                         localized — E2GCL and GRACE/GCA only (default full)
    --negatives <k>      smallneg: representative negatives per epoch
                         (default 256)
    --loss-hops <h>      localized: negative neighbourhood radius (default 2)

PRETRAIN:
    --out <path>         output JSON path (default embeddings.json)

EVALUATE:
    --runs <n>           probe repetitions (default 5)

SELECT:
    --ratio <f64>        node budget ratio r (default 0.4)

VIEW:
    --node <n>           target node id (default 0)
    --tau <f32>          neighbour sampling ratio (default 1.0)
    --eta <f32>          feature perturbation scale (default 0.6)

GRAPHCLS:
    --dataset <name>     nci1-sim | ptcmr-sim | proteins-sim (default nci1-sim)

TRAIN:
    --save <path>        artifact output path (default model.e2gcl)
    --fault-torn-write <bytes>  fault injection: write only the first
                         <bytes> bytes of the artifact (no atomic rename),
                         then exit non-zero — simulates a crash mid-save

QUERY:
    --artifact <path>    artifact to load (default model.e2gcl)
    --node <n>           query node id (default 0)
    --k <n>              neighbours to return (default 10)
    --mode <m>           stored | inductive (default stored)
    --index <kind>       none | ivf — route top-k through an ANN index
                         (default none = exact brute force)
    --nprobe <n>         ivf: inverted lists scanned per query, 0 = index
                         default (default 0)
    --index-path <path>  ivf: load the index from <path> if it exists,
                         otherwise build and save it there

BUILD-INDEX:
    --artifact <path>    artifact whose embeddings to index (default model.e2gcl)
    --out <path>         index output path (default model.ivf)
    --nlist <n>          inverted lists (default ~sqrt(rows), clamped)
    --nprobe <n>         default lists scanned per query
    --train-sample <n>   rows sampled for k-means training
    --kmeans-iters <n>   Lloyd iterations
    --index-seed <u64>   quantizer seed (default: artifact seed)
    --recall-k <n>       k for the printed recall probe (default 10)
    --recall-queries <n> stored queries in the recall probe (default 64)

SERVE-BENCH:
    --artifact <path>    artifact to serve (omit to train a fresh model first)
    --rounds <n>         batches per batch size (default 50)
    --k <n>              top-k per query (default 10)
    --json <path>        machine-readable report (default BENCH_serve.json)
    --index <kind>       none | ivf — attach an ANN index to the server
                         (default none; accepts the QUERY ivf flags)
    --target-qps <f64>   closed-loop load-generator section at this offered
                         rate through the micro-batcher, 0 = skip (default 0)
    --loadgen-requests <n>  requests in the load-generator trial (default 2000)
    --max-batch <n>      micro-batcher: flush at this many requests (default 64)
    --max-wait-us <n>    micro-batcher: max coalescing wait (default 500)
    --burst <n>          overload section: requests per burst (default 64)
    --overload-rounds <n>  overload section: bursts offered (default 30)
    --queue-cap <n>      bounded admission queue + high-water mark (default 32)
    --deadline-us <n>    per-request deadline budget, 0 = none (default 0)
    --inductive-fail-every <n>  inject a persistent inductive fault on every
                         n-th query to exercise degradation (default 7)

KERNELS:
    --tune <path>        run the kernel autotuner and persist the winning
                         tile configuration to <path> (corrupt files are
                         quarantined to <path>.corrupt and re-tuned)"
    );
}
