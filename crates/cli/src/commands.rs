//! CLI subcommand implementations.

use crate::args::Args;
use e2gcl::models::adgcl::AdgclModel;
use e2gcl::models::bgrl::{AfgrlModel, BgrlModel};
use e2gcl::models::dgi::DgiModel;
use e2gcl::models::gae::{GaeModel, VgaeModel};
use e2gcl::models::grace::GraceModel;
use e2gcl::models::mvgrl::MvgrlModel;
use e2gcl::models::walks::WalkModel;
use e2gcl::prelude::*;
use e2gcl_datasets::registry;
use e2gcl_selector::greedy::GreedySelector;
use e2gcl_selector::NodeSelector;
use e2gcl_serve::{
    run_latency_bench, run_load, run_overload_bench, Artifact, ArtifactMeta, BatchServer,
    BenchOptions, EmbeddingStore, InductiveEngine, IvfConfig, IvfIndex, LoadGenOptions,
    MicroBatcher, OverloadOptions, RuntimeConfig, SchedulerConfig, ServeFaultPlan,
};
use e2gcl_views::{ViewConfig, ViewGenerator};
use serde::Serialize;
use std::path::Path;

/// `e2gcl datasets`
pub fn datasets() -> i32 {
    println!(
        "{:<14} {:>9} {:>12} {:>8} {:>9} {:>8}   stands in for",
        "name", "nodes", "edges", "degree", "features", "classes"
    );
    for s in registry::all_node_specs() {
        println!(
            "{:<14} {:>9} {:>12} {:>8.2} {:>9} {:>8}   {}",
            s.name,
            s.sim_nodes,
            "(generated)",
            s.sim_avg_degree,
            s.sim_features,
            s.sim_classes,
            s.paper_name
        );
    }
    println!(
        "\ngraph-classification analogs: nci1-sim, ptcmr-sim, proteins-sim\n\
         (all generated on demand; use --scale to shrink)"
    );
    0
}

fn build_model(name: &str) -> Result<Box<dyn ContrastiveModel>, String> {
    Ok(match name {
        "E2GCL" => Box::new(E2gclModel::default()) as Box<dyn ContrastiveModel>,
        "GRACE" => Box::new(GraceModel::grace()),
        "GCA" => Box::new(GraceModel::gca()),
        "MVGRL" => Box::new(MvgrlModel::default()),
        "BGRL" => Box::new(BgrlModel::default()),
        "AFGRL" => Box::new(AfgrlModel::default()),
        "DGI" => Box::new(DgiModel),
        "GAE" => Box::new(GaeModel),
        "VGAE" => Box::new(VgaeModel::default()),
        "ADGCL" => Box::new(AdgclModel::default()),
        "DW" => Box::new(WalkModel::deepwalk()),
        "N2V" => Box::new(WalkModel::node2vec()),
        other => {
            return Err(format!(
                "unknown model '{other}'; valid models: E2GCL, GRACE, GCA, \
                 MVGRL, BGRL, AFGRL, DGI, GAE, VGAE, ADGCL, DW, N2V"
            ))
        }
    })
}

struct Common {
    data: NodeDataset,
    model: Box<dyn ContrastiveModel>,
    cfg: TrainConfig,
    seed: u64,
    scale: f64,
}

fn common(args: &Args) -> Result<Common, String> {
    let dataset = args.get("dataset", "cora-sim");
    let scale: f64 = args.get_parse("scale", 0.25)?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(format!("--scale must be finite and > 0, got {scale}"));
    }
    let seed: u64 = args.get_parse("seed", 0)?;
    let epochs: usize = args.get_parse("epochs", 30)?;
    let data_spec = spec(&dataset).map_err(|e| e.to_string())?;
    let data = NodeDataset::generate(&data_spec, scale, seed);
    let model = build_model(&args.get("model", "E2GCL"))?;
    let checkpoint = args.get("checkpoint", "");
    let checkpoint_every: usize = args.get_parse("checkpoint-every", 5)?;
    let resume: bool = args.get_parse("resume", false)?;
    if resume && checkpoint.is_empty() {
        return Err("--resume true requires --checkpoint <path>".to_string());
    }
    let durable = if checkpoint.is_empty() {
        None
    } else {
        Some(DurableConfig {
            path: checkpoint,
            every_epochs: checkpoint_every,
            resume,
        })
    };
    let use_minibatch: bool = args.get_parse("minibatch", false)?;
    let batch_nodes: usize = args.get_parse("batch-nodes", 1024)?;
    // 0 means "keep the whole neighbourhood" (no fanout cap).
    let fanout: usize = args.get_parse("fanout", 0)?;
    let minibatch = use_minibatch.then_some(MinibatchConfig {
        batch_nodes,
        fanout: (fanout > 0).then_some(fanout),
    });
    let loss_name = args.get("loss", "full");
    let negatives: usize = args.get_parse("negatives", 256)?;
    let loss_hops: usize = args.get_parse("loss-hops", 2)?;
    let loss = match loss_name.as_str() {
        "full" => LossStrategy::Full,
        "smallneg" => LossStrategy::SmallNeg { negatives },
        "localized" => LossStrategy::Localized { hops: loss_hops },
        other => {
            return Err(format!(
                "unknown --loss '{other}'; valid strategies: full, smallneg, localized \
                 (smallneg takes --negatives, localized takes --loss-hops)"
            ))
        }
    };
    let cfg = TrainConfig {
        epochs,
        durable,
        minibatch,
        loss,
        ..TrainConfig::default()
    };
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(Common {
        data,
        model,
        cfg,
        seed,
        scale,
    })
}

/// Pre-trains `c.model` and packages the frozen encoder + embeddings as a
/// saveable [`Artifact`]. Fails for models that do not expose an encoder
/// (e.g. random-walk baselines).
fn train_artifact(c: &Common) -> Result<Artifact, String> {
    let out = c
        .model
        .pretrain(
            &c.data.graph,
            &c.data.features,
            &c.cfg,
            &mut SeedRng::new(c.seed),
        )
        .map_err(|e| e.to_string())?;
    let encoder = out.encoder.ok_or_else(|| {
        format!(
            "model {} does not expose a frozen encoder; artifact saving \
             needs an encoder-based model (e.g. E2GCL, GRACE, GCA)",
            c.model.name()
        )
    })?;
    Ok(Artifact {
        meta: ArtifactMeta {
            model: c.model.name(),
            dataset: c.data.name.clone(),
            scale: c.scale,
            seed: c.seed,
        },
        config: c.cfg.clone(),
        encoder,
        embeddings: out.embeddings,
    })
}

/// Regenerates the dataset an artifact was trained on (datasets are
/// deterministic in `(spec, scale, seed)`, so the artifact only stores the
/// recipe, not the graph).
fn dataset_of(meta: &ArtifactMeta) -> Result<NodeDataset, String> {
    let data_spec = spec(&meta.dataset).map_err(|e| e.to_string())?;
    Ok(NodeDataset::generate(&data_spec, meta.scale, meta.seed))
}

fn run_or_usage(result: Result<i32, String>) -> i32 {
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// `e2gcl pretrain`
pub fn pretrain(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let out_path = args.get("out", "embeddings.json");
        eprintln!(
            "pre-training {} on {} ({} nodes, {} edges)...",
            c.model.name(),
            c.data.name,
            c.data.num_nodes(),
            c.data.graph.num_edges()
        );
        let out = c
            .model
            .pretrain(
                &c.data.graph,
                &c.data.features,
                &c.cfg,
                &mut SeedRng::new(c.seed),
            )
            .map_err(|e| e.to_string())?;
        #[derive(Serialize)]
        struct Dump {
            model: String,
            dataset: String,
            seed: u64,
            epochs: usize,
            total_secs: f64,
            embedding_dim: usize,
            embeddings: Vec<Vec<f32>>,
        }
        let dump = Dump {
            model: c.model.name(),
            dataset: c.data.name.clone(),
            seed: c.seed,
            epochs: c.cfg.epochs,
            total_secs: out.total_time.as_secs_f64(),
            embedding_dim: out.embeddings.cols(),
            embeddings: (0..out.embeddings.rows())
                .map(|v| out.embeddings.row(v).to_vec())
                .collect(),
        };
        std::fs::write(
            &out_path,
            serde_json::to_string(&dump).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {out_path}: {e}"))?;
        println!(
            "wrote {} embeddings ({} dims) to {out_path} in {:.2}s",
            dump.embeddings.len(),
            dump.embedding_dim,
            dump.total_secs
        );
        Ok(0)
    })())
}

/// `e2gcl evaluate`
pub fn evaluate(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let runs: usize = args.get_parse("runs", 5)?;
        let run = e2gcl::pipeline::run_node_classification(
            c.model.as_ref(),
            &c.data,
            &c.cfg,
            runs,
            c.seed,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{} on {}: {:.2} ± {:.2} % over {} successful runs \
             (selection {:.2}s, total {:.2}s per run)",
            run.model,
            run.dataset,
            100.0 * run.mean,
            100.0 * run.std,
            run.accuracies.len(),
            run.selection_secs,
            run.total_secs
        );
        for (seed, err) in &run.failed_runs {
            eprintln!("run with seed {seed} failed: {err}");
        }
        if run.accuracies.is_empty() {
            return Err("every run failed".to_string());
        }
        Ok(0)
    })())
}

/// `e2gcl select`
pub fn select(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let ratio: f64 = args.get_parse("ratio", 0.4)?;
        let budget = ((c.data.num_nodes() as f64) * ratio).round() as usize;
        let t0 = std::time::Instant::now();
        let sel = GreedySelector::default().select(
            &c.data.graph,
            &c.data.features,
            budget,
            &mut SeedRng::new(c.seed),
        );
        let secs = t0.elapsed().as_secs_f64();
        let mut per_class = vec![0usize; c.data.num_classes];
        for &v in &sel.nodes {
            per_class[c.data.labels[v]] += 1;
        }
        println!(
            "selected {} / {} nodes (r = {ratio}) in {secs:.3}s",
            sel.nodes.len(),
            c.data.num_nodes()
        );
        println!("per-class counts: {per_class:?}");
        let max_w = sel.weights.iter().cloned().fold(0.0f32, f32::max);
        println!(
            "λ weights: sum {:.0}, max {max_w:.0}",
            sel.weights.iter().sum::<f32>()
        );
        println!(
            "first 20 selected: {:?}",
            &sel.nodes[..sel.nodes.len().min(20)]
        );
        Ok(0)
    })())
}

/// `e2gcl linkpred`
pub fn linkpred(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let mut rng = SeedRng::new(c.seed);
        let split = e2gcl_datasets::split::EdgeSplit::random(&c.data.graph, &mut rng.fork("split"));
        eprintln!(
            "pre-training {} on the training graph ({} of {} edges kept)...",
            c.model.name(),
            split.train_pos.len(),
            c.data.graph.num_edges()
        );
        let out = c
            .model
            .pretrain(&split.train_graph, &c.data.features, &c.cfg, &mut rng)
            .map_err(|e| e.to_string())?;
        let acc = e2gcl::eval::link_prediction_accuracy(&out.embeddings, &split, c.seed);
        println!(
            "{} on {}: link-prediction accuracy {:.2} % ({} test edges)",
            c.model.name(),
            c.data.name,
            100.0 * acc,
            split.test_pos.len()
        );
        Ok(0)
    })())
}

/// `e2gcl graphcls`
pub fn graphcls(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let dataset = args.get("dataset", "nci1-sim");
        let scale: f64 = args.get_parse("scale", 0.25)?;
        if !scale.is_finite() || scale <= 0.0 {
            return Err(format!("--scale must be finite and > 0, got {scale}"));
        }
        let seed: u64 = args.get_parse("seed", 0)?;
        let epochs: usize = args.get_parse("epochs", 30)?;
        let runs: usize = args.get_parse("runs", 3)?;
        let g_spec =
            e2gcl_datasets::graph_dataset::graph_spec(&dataset).map_err(|e| e.to_string())?;
        let data = e2gcl_datasets::GraphDataset::generate(&g_spec, scale, seed);
        let model = build_model(&args.get("model", "E2GCL"))?;
        let cfg = TrainConfig {
            epochs,
            ..TrainConfig::default()
        };
        cfg.validate().map_err(|e| e.to_string())?;
        let run =
            e2gcl::pipeline::run_graph_classification(model.as_ref(), &data, &cfg, runs, seed)
                .map_err(|e| e.to_string())?;
        println!(
            "{} on {} ({} graphs): {:.2} ± {:.2} %",
            model.name(),
            data.name,
            data.len(),
            100.0 * run.mean,
            100.0 * run.std
        );
        for (seed, err) in &run.failed_runs {
            eprintln!("run with seed {seed} failed: {err}");
        }
        Ok(0)
    })())
}

/// `e2gcl view`
pub fn view(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let node: usize = args.get_parse("node", 0)?;
        let tau: f32 = args.get_parse("tau", 1.0)?;
        let eta: f32 = args.get_parse("eta", 0.6)?;
        if node >= c.data.num_nodes() {
            return Err(format!(
                "--node {node} out of range (dataset has {} nodes)",
                c.data.num_nodes()
            ));
        }
        let generator = ViewGenerator::new(
            &c.data.graph,
            &c.data.features,
            ViewConfig::default(),
            &mut SeedRng::new(c.seed),
        );
        let v = generator.sample_ego_view(node, tau, eta, &mut SeedRng::new(c.seed ^ 1));
        println!(
            "ego view of node {node} (τ = {tau}, η = {eta}): {} nodes, {} edges",
            v.nodes.len(),
            v.graph.num_edges()
        );
        println!("member nodes: {:?}", v.nodes);
        let changed = (0..v.nodes.len())
            .map(|local| {
                let global = v.nodes[local];
                v.features
                    .row(local)
                    .iter()
                    .zip(c.data.features.row(global))
                    .filter(|(a, b)| (**a - **b).abs() > 1e-9)
                    .count()
            })
            .sum::<usize>();
        println!("perturbed feature entries: {changed}");
        Ok(0)
    })())
}

/// `e2gcl train`
pub fn train(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let c = common(&args)?;
        let save_path = args.get("save", "model.e2gcl");
        let torn_keep: usize = args.get_parse("fault-torn-write", 0)?;
        eprintln!(
            "training {} on {} ({} nodes, {} edges)...",
            c.model.name(),
            c.data.name,
            c.data.num_nodes(),
            c.data.graph.num_edges()
        );
        let artifact = train_artifact(&c)?;
        if torn_keep > 0 {
            artifact
                .save_torn(Path::new(&save_path), torn_keep)
                .map_err(|e| e.to_string())?;
            return Err(format!(
                "simulated crash: torn artifact write left {torn_keep} bytes at {save_path}"
            ));
        }
        artifact
            .save(Path::new(&save_path))
            .map_err(|e| e.to_string())?;
        let bytes = std::fs::metadata(&save_path).map(|m| m.len()).unwrap_or(0);
        println!(
            "saved artifact to {save_path}: {} encoder, {} x {} embeddings, {} params, {bytes} bytes",
            artifact.encoder.kind(),
            artifact.embeddings.rows(),
            artifact.embeddings.cols(),
            artifact
                .encoder
                .params()
                .iter()
                .map(|m| m.rows() * m.cols())
                .sum::<usize>()
        );
        Ok(0)
    })())
}

/// Builds (or loads and validates) an IVF index for `store` from the
/// shared `--nlist` / `--nprobe` / `--train-sample` / `--kmeans-iters` /
/// `--index-seed` / `--index-path` flags.
fn ivf_for_store(args: &Args, store: &EmbeddingStore, seed: u64) -> Result<IvfIndex, String> {
    let index_path = args.get("index-path", "");
    let nprobe: usize = args.get_parse("nprobe", 0)?; // 0 = keep index default
    let mut index = if !index_path.is_empty() && Path::new(&index_path).exists() {
        let mut ix = IvfIndex::load(Path::new(&index_path)).map_err(|e| e.to_string())?;
        ix.pack(store).map_err(|e| e.to_string())?;
        eprintln!("loaded ivf index from {index_path}: {} lists", ix.nlist());
        ix
    } else {
        let defaults = IvfConfig::for_rows(store.len());
        let cfg = IvfConfig {
            nlist: args.get_parse("nlist", defaults.nlist)?,
            nprobe: defaults.nprobe,
            train_sample: args.get_parse("train-sample", defaults.train_sample)?,
            kmeans_iters: args.get_parse("kmeans-iters", defaults.kmeans_iters)?,
            seed: args.get_parse("index-seed", seed)?,
        };
        let t0 = std::time::Instant::now();
        let ix = IvfIndex::build(store, cfg).map_err(|e| e.to_string())?;
        eprintln!(
            "built ivf index: {} lists over {} rows in {:.2}s",
            ix.nlist(),
            store.len(),
            t0.elapsed().as_secs_f64()
        );
        if !index_path.is_empty() {
            ix.save(Path::new(&index_path)).map_err(|e| e.to_string())?;
            eprintln!("saved ivf index to {index_path}");
        }
        ix
    };
    if nprobe > 0 {
        index.set_nprobe(nprobe);
    }
    Ok(index)
}

/// `e2gcl query`
pub fn query(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let path = args.get("artifact", "model.e2gcl");
        let node: usize = args.get_parse("node", 0)?;
        let k: usize = args.get_parse("k", 10)?;
        let mode = args.get("mode", "stored");
        let index_kind = args.get("index", "none");
        let artifact = Artifact::load(Path::new(&path)).map_err(|e| e.to_string())?;
        eprintln!(
            "loaded {path}: {} on {} (scale {}, seed {}), {} x {} embeddings",
            artifact.meta.model,
            artifact.meta.dataset,
            artifact.meta.scale,
            artifact.meta.seed,
            artifact.embeddings.rows(),
            artifact.embeddings.cols()
        );
        let store = EmbeddingStore::new(artifact.embeddings.clone());
        let q: Vec<f32> = match mode.as_str() {
            "stored" => store.embedding(node).map_err(|e| e.to_string())?.to_vec(),
            "inductive" => {
                let data = dataset_of(&artifact.meta)?;
                let engine =
                    InductiveEngine::new(artifact.encoder.clone(), data.graph, data.features)
                        .map_err(|e| e.to_string())?;
                engine.embed_node(node).map_err(|e| e.to_string())?
            }
            other => return Err(format!("unknown --mode '{other}' (stored | inductive)")),
        };
        let hits = match index_kind.as_str() {
            "none" => store.top_k(&q, k).map_err(|e| e.to_string())?,
            "ivf" => {
                let index = ivf_for_store(&args, &store, artifact.meta.seed)?;
                eprintln!(
                    "searching via ivf ({} lists, probing {})",
                    index.nlist(),
                    index.nprobe()
                );
                index.search(&store, &q, k).map_err(|e| e.to_string())?
            }
            other => return Err(format!("unknown --index '{other}' (none | ivf)")),
        };
        if hits.is_empty() {
            return Err("store returned no hits".to_string());
        }
        println!("top-{k} cosine neighbours of node {node} ({mode} embedding):");
        for (rank, (u, score)) in hits.iter().enumerate() {
            println!("  {:>3}. node {u:>6}  score {score:+.4}", rank + 1);
        }
        Ok(0)
    })())
}

/// `e2gcl build-index`
pub fn build_index(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let path = args.get("artifact", "model.e2gcl");
        let out = args.get("out", "model.ivf");
        let recall_k: usize = args.get_parse("recall-k", 10)?;
        let recall_queries: usize = args.get_parse("recall-queries", 64)?;
        let artifact = Artifact::load(Path::new(&path)).map_err(|e| e.to_string())?;
        let store = EmbeddingStore::new(artifact.embeddings.clone());
        let defaults = IvfConfig::for_rows(store.len());
        let cfg = IvfConfig {
            nlist: args.get_parse("nlist", defaults.nlist)?,
            nprobe: args.get_parse("nprobe", defaults.nprobe)?,
            train_sample: args.get_parse("train-sample", defaults.train_sample)?,
            kmeans_iters: args.get_parse("kmeans-iters", defaults.kmeans_iters)?,
            seed: args.get_parse("index-seed", artifact.meta.seed)?,
        };
        let t0 = std::time::Instant::now();
        let index = IvfIndex::build(&store, cfg).map_err(|e| e.to_string())?;
        let build_secs = t0.elapsed().as_secs_f64();
        // Evenly spaced stored rows make a deterministic recall probe the
        // CI gate can threshold on.
        let m = recall_queries.min(store.len()).max(1);
        let queries: Vec<usize> = (0..m).map(|i| i * store.len() / m).collect();
        let recall = index
            .measure_recall(&store, &queries, recall_k)
            .map_err(|e| e.to_string())?;
        index.save(Path::new(&out)).map_err(|e| e.to_string())?;
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "built ivf index over {} x {} rows: {} lists, nprobe {}, \
             {build_secs:.2}s build, {bytes} bytes -> {out}",
            store.len(),
            store.dim(),
            index.nlist(),
            index.nprobe()
        );
        println!(
            "recall@{recall_k} over {} stored queries: {recall:.4}",
            queries.len()
        );
        Ok(0)
    })())
}

/// Shape of `BENCH_serve.json` (shared with the bench bin by convention).
#[derive(Serialize)]
struct ServeBenchDump {
    name: String,
    model: String,
    dataset: String,
    num_nodes: usize,
    store_rows: usize,
    embedding_dim: usize,
    #[serde(skip_serializing_if = "Option::is_none")]
    index: Option<IvfConfig>,
    batches: Vec<e2gcl_serve::BatchBenchReport>,
    overload: e2gcl_serve::OverloadReport,
    #[serde(skip_serializing_if = "Option::is_none")]
    loadgen: Option<e2gcl_serve::LoadGenReport>,
}

/// `e2gcl serve-bench`
pub fn serve_bench(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        let path = args.get("artifact", "");
        let rounds: usize = args.get_parse("rounds", 50)?;
        let k: usize = args.get_parse("k", 10)?;
        let json_path = args.get("json", "BENCH_serve.json");
        let burst: usize = args.get_parse("burst", 64)?;
        let overload_rounds: usize = args.get_parse("overload-rounds", 30)?;
        let queue_cap: usize = args.get_parse("queue-cap", 32)?;
        let deadline_us: u64 = args.get_parse("deadline-us", 0)?;
        let inductive_fail_every: usize = args.get_parse("inductive-fail-every", 7)?;
        let index_kind = args.get("index", "none");
        let target_qps: f64 = args.get_parse("target-qps", 0.0)?;
        let loadgen_requests: usize = args.get_parse("loadgen-requests", 2000)?;
        let max_batch: usize = args.get_parse("max-batch", 64)?;
        let max_wait_us: u64 = args.get_parse("max-wait-us", 500)?;
        let (artifact, data) = if path.is_empty() {
            let c = common(&args)?;
            eprintln!(
                "no --artifact given; pre-training {} on {} first...",
                c.model.name(),
                c.data.name
            );
            let artifact = train_artifact(&c)?;
            (artifact, c.data)
        } else {
            let artifact = Artifact::load(Path::new(&path)).map_err(|e| e.to_string())?;
            let data = dataset_of(&artifact.meta)?;
            (artifact, data)
        };
        let mut server =
            BatchServer::from_artifact(&artifact, data.graph.clone(), data.features.clone())
                .map_err(|e| e.to_string())?;
        let index_cfg = match index_kind.as_str() {
            "none" => None,
            "ivf" => {
                let index = ivf_for_store(&args, server.store(), artifact.meta.seed)?;
                let cfg = index.config();
                server = server.with_index(index).map_err(|e| e.to_string())?;
                Some(cfg)
            }
            other => return Err(format!("unknown --index '{other}' (none | ivf)")),
        };
        let opts = BenchOptions {
            rounds,
            k,
            ..BenchOptions::default()
        };
        let mut rng = SeedRng::new(artifact.meta.seed ^ 0x5e7e);
        let reports = run_latency_bench(&mut server, &opts, &mut rng);
        println!(
            "{:>6} {:>7} {:>11} {:>11} {:>11} {:>12}",
            "batch", "rounds", "p50(us)", "p95(us)", "p99(us)", "qps"
        );
        for r in &reports {
            println!(
                "{:>6} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>12.0}",
                r.batch_size,
                r.rounds,
                r.latency.p50_us,
                r.latency.p95_us,
                r.latency.p99_us,
                r.throughput_qps
            );
        }
        // Overload section: a second server with a bounded queue, deadlines
        // and a seed-scoped fault plan, saturated past capacity to measure
        // shed counts, degraded answers and tail latency under pressure.
        let runtime = RuntimeConfig {
            queue_capacity: queue_cap,
            default_deadline_us: (deadline_us > 0).then_some(deadline_us),
            high_water: queue_cap,
            ..RuntimeConfig::default()
        };
        let plan = ServeFaultPlan {
            only_seed: Some(artifact.meta.seed),
            inductive_fail_every,
            inductive_fail_attempts: 0,
            ..ServeFaultPlan::default()
        };
        let mut overload_server = BatchServer::from_artifact(&artifact, data.graph, data.features)
            .map_err(|e| e.to_string())?
            .with_runtime(runtime)
            .with_fault_plan(plan);
        let overload_opts = OverloadOptions {
            rounds: overload_rounds,
            burst,
            k,
            ..OverloadOptions::default()
        };
        let mut overload_rng = SeedRng::new(artifact.meta.seed ^ 0x0e4e);
        let overload = run_overload_bench(&mut overload_server, &overload_opts, &mut overload_rng);
        println!(
            "overload: offered {} admitted {} shed(overload) {} shed(deadline) {} \
             degraded {} retries {} failed {}",
            overload.offered,
            overload.admitted,
            overload.shed_overload,
            overload.shed_deadline,
            overload.degraded,
            overload.retries,
            overload.failed
        );
        println!(
            "overload: backpressure {}/{} rounds (throttled {}), saturated p99 {:.1} us",
            overload.backpressure_rounds,
            overload_rounds,
            overload.throttled_rounds,
            overload.latency.p99_us
        );
        // Closed-loop load generation through the micro-batcher at the
        // requested offered rate (skipped when --target-qps is 0).
        let loadgen = if target_qps > 0.0 {
            let scheduler = SchedulerConfig {
                max_batch,
                max_wait_us,
            };
            let mut batcher = MicroBatcher::new(scheduler);
            let lg_opts = LoadGenOptions {
                target_qps,
                requests: loadgen_requests,
                k,
                inductive_every: 0,
                seed: artifact.meta.seed ^ 0x10ad,
            };
            let report = run_load(&mut server, &mut batcher, &lg_opts);
            println!(
                "loadgen: target {:.0} qps, achieved {:.0} qps, {}/{} answered, \
                 {} batches (mean {:.1}), p50 {:.1} us p99 {:.1} us",
                report.target_qps,
                report.achieved_qps,
                report.answered,
                report.offered,
                report.batches,
                report.mean_batch,
                report.latency.p50_us,
                report.latency.p99_us
            );
            Some(report)
        } else {
            None
        };
        let dump = ServeBenchDump {
            name: "serve_latency".to_string(),
            model: artifact.meta.model.clone(),
            dataset: artifact.meta.dataset.clone(),
            num_nodes: artifact.embeddings.rows(),
            store_rows: artifact.embeddings.rows(),
            embedding_dim: artifact.embeddings.cols(),
            index: index_cfg,
            batches: reports,
            overload,
            loadgen,
        };
        std::fs::write(
            &json_path,
            serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {json_path}: {e}"))?;
        println!("wrote {json_path}");
        Ok(0)
    })())
}

/// `e2gcl kernels` — report the dense-kernel dispatch state: detected CPU
/// features, the active dispatch path and tile configuration, where the
/// selection came from (`E2GCL_KERNEL_CONFIG`, a `kernel_tune.json`, or
/// detected defaults), and any resolution events (quarantined corrupt tune
/// files, ignored feature mismatches). With `--tune <path>` it first runs
/// the autotuner and persists the winning configuration to `<path>`.
pub fn kernels(argv: &[String]) -> i32 {
    run_or_usage((|| {
        let args = Args::parse(argv)?;
        use e2gcl_linalg::{dispatch, tune};
        println!(
            "cpu features:  [{}]",
            dispatch::detected_features().join(" ")
        );
        let tune_path = args.get("tune", "");
        if !tune_path.is_empty() {
            let out = tune::ensure(&tune_path);
            for ev in &out.events {
                println!("[tune] {ev}");
            }
            println!(
                "{} {}: path={} tall={:?} square={:?} spmm={:?}",
                if out.tuned_now {
                    "autotuned and wrote"
                } else {
                    "loaded valid"
                },
                tune_path,
                out.tune.path,
                out.tune.tall,
                out.tune.square,
                out.tune.spmm
            );
            println!(
                "(a tune file takes effect when the process starts from its \
                 directory or via E2GCL_KERNEL_CONFIG={tune_path})"
            );
        }
        for ev in dispatch::startup_events() {
            println!("[dispatch] {ev}");
        }
        let sel = dispatch::active_selection();
        println!("dispatch path: {}", sel.path.as_str());
        println!("source:        {}", dispatch::active_source());
        println!(
            "tiles:         tall={:?} square={:?} spmm={:?}",
            sel.tall, sel.square, sel.spmm
        );
        Ok(0)
    })())
}
