//! Minimal `--flag value` / `--flag=value` argument parsing (no external
//! dependencies).

use std::collections::HashMap;

/// Parsed `--key value` pairs.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses a flat option list; each option is either `--key value` or
    /// `--key=value`. Unknown positional arguments abort.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = &argv[i];
            if let Some(name) = key.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    if k.is_empty() {
                        return Err(format!("malformed option '{key}'"));
                    }
                    values.insert(k.to_string(), v.to_string());
                    i += 1;
                } else {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    values.insert(name.to_string(), value.clone());
                    i += 2;
                }
            } else {
                return Err(format!("unexpected argument '{key}'"));
            }
        }
        Ok(Args { values })
    }

    /// String option with default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed numeric/typed option with default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_with_defaults() {
        let a = Args::parse(&argv(&["--dataset", "cora-sim", "--epochs", "5"])).unwrap();
        assert_eq!(a.get("dataset", "x"), "cora-sim");
        assert_eq!(a.get("missing", "fallback"), "fallback");
        assert_eq!(a.get_parse("epochs", 0usize).unwrap(), 5);
        assert_eq!(a.get_parse("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn parses_equals_syntax_and_mixes() {
        let a = Args::parse(&argv(&[
            "--dataset=cora-sim",
            "--epochs",
            "5",
            "--scale=0.1",
        ]))
        .unwrap();
        assert_eq!(a.get("dataset", "x"), "cora-sim");
        assert_eq!(a.get_parse("epochs", 0usize).unwrap(), 5);
        assert_eq!(a.get_parse("scale", 0.0f64).unwrap(), 0.1);
        // Values may themselves contain '=' (only the first splits).
        let b = Args::parse(&argv(&["--expr=a=b"])).unwrap();
        assert_eq!(b.get("expr", ""), "a=b");
        // An explicitly empty value is allowed with '='.
        let c = Args::parse(&argv(&["--out="])).unwrap();
        assert_eq!(c.get("out", "default"), "");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&argv(&["positional"])).is_err());
        assert!(Args::parse(&argv(&["--flag"])).is_err());
        let a = Args::parse(&argv(&["--epochs", "abc"])).unwrap();
        assert!(a.get_parse("epochs", 0usize).is_err());
    }
}
