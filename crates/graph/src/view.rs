//! Shared subgraph primitive for training and serving.
//!
//! A [`GraphView`] is an induced subgraph plus the bookkeeping both the
//! mini-batch trainer and the inductive serving engine need: the local↔global
//! node map and the **full-graph degrees** of every included node. The
//! normalised adjacency of a view is built from those full-graph degrees
//! (see [`subgraph_adjacency`]): interior nodes then carry exactly their
//! full-graph adjacency rows, so an `L`-layer GCN forward over an `L`-hop
//! view reproduces the full-graph embedding of the view's interior nodes
//! **bitwise** — the Theorem-1 exactness argument that previously lived only
//! in `e2gcl-serve`. Frontier rows are incomplete, but their hidden states
//! cannot reach an interior node within `L` layers.
//!
//! The bitwise claim requires matching `e2gcl_graph::norm` exactly: the same
//! `f32` expressions for the degree scaling and the same entry order per row
//! (self-loop first, then neighbours in ascending CSR order). Both are
//! asserted by tests here ([`GraphView::full`] must equal
//! [`crate::norm::normalized_adjacency`] bit for bit) and by the serving
//! round-trip tests in `crates/serve`.

use crate::{CsrGraph, SparseMatrix};
use e2gcl_linalg::Matrix;

/// The normalised adjacency of a local subgraph, built from externally
/// supplied `degrees` (one per local node — normally the **full-graph**
/// degrees, see the module docs; the serving engine passes grown-graph
/// degrees when attaching unseen nodes).
///
/// `symmetric` selects `D̃^{-1/2}(A+I)D̃^{-1/2}` (GCN/SGC) versus
/// `D̃^{-1}(A+I)` (GraphSAGE-mean); both replicate the exact `f32`
/// expressions and entry order of [`crate::norm`].
pub fn subgraph_adjacency(local: &CsrGraph, degrees: &[usize], symmetric: bool) -> SparseMatrix {
    debug_assert_eq!(local.num_nodes(), degrees.len());
    let n = local.num_nodes();
    let mut triplets = Vec::with_capacity(2 * local.num_edges() + n);
    if symmetric {
        let inv_sqrt: Vec<f32> = degrees
            .iter()
            .map(|&d| 1.0 / ((d + 1) as f32).sqrt())
            .collect();
        for (v, &inv_v) in inv_sqrt.iter().enumerate() {
            triplets.push((v, v, inv_v * inv_v));
            for &u in local.neighbors(v) {
                let u = u as usize;
                triplets.push((v, u, inv_v * inv_sqrt[u]));
            }
        }
    } else {
        for (v, &d) in degrees.iter().enumerate() {
            let inv = 1.0 / (d + 1) as f32;
            triplets.push((v, v, inv));
            for &u in local.neighbors(v) {
                triplets.push((v, u as usize, inv));
            }
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// An induced subgraph with its local↔global node map and the full-graph
/// degree of every included node.
#[derive(Clone, Debug)]
pub struct GraphView {
    /// The induced subgraph over local indices.
    pub graph: CsrGraph,
    /// `nodes[local] = global` (sorted ascending).
    pub nodes: Vec<usize>,
    /// `degrees[local]` = degree of `nodes[local]` in the **full** graph.
    pub degrees: Vec<usize>,
}

impl GraphView {
    /// The subgraph induced on `nodes` (sorted ascending, duplicate-free).
    ///
    /// # Panics
    /// Panics (debug) if `nodes` is not strictly sorted or out of range.
    pub fn induced(g: &CsrGraph, nodes: Vec<usize>) -> GraphView {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "unsorted node set");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (local_u, &global_u) in nodes.iter().enumerate() {
            for &global_w in g.neighbors(global_u) {
                if let Ok(local_w) = nodes.binary_search(&(global_w as usize)) {
                    adj[local_u].push(local_w as u32);
                }
            }
        }
        // `nodes` and every CSR neighbour list are ascending, so each mapped
        // list is already sorted and duplicate-free.
        let graph = CsrGraph::from_adjacency(adj);
        let degrees = nodes.iter().map(|&v| g.degree(v)).collect();
        GraphView {
            graph,
            nodes,
            degrees,
        }
    }

    /// The `hops`-hop ego view of `v` (the node set of
    /// [`crate::ego::EgoNet::extract`]). The centre's local index is
    /// `self.local(v)`.
    pub fn ego(g: &CsrGraph, v: usize, hops: usize) -> GraphView {
        let mut nodes = g.khop_neighbors(v, hops);
        let pos = nodes.binary_search(&v).unwrap_err();
        nodes.insert(pos, v);
        Self::induced(g, nodes)
    }

    /// The identity view: every node, the whole adjacency. Its normalised
    /// adjacency is bitwise equal to [`crate::norm::normalized_adjacency`].
    pub fn full(g: &CsrGraph) -> GraphView {
        GraphView {
            graph: g.clone(),
            nodes: (0..g.num_nodes()).collect(),
            degrees: g.degrees(),
        }
    }

    /// The encoder-family normalised adjacency of this view, built from the
    /// stored full-graph degrees (see [`subgraph_adjacency`]).
    pub fn normalized_adjacency(&self, symmetric: bool) -> SparseMatrix {
        subgraph_adjacency(&self.graph, &self.degrees, symmetric)
    }

    /// Gathers this view's feature rows from the full feature matrix.
    pub fn features(&self, x: &Matrix) -> Matrix {
        x.select_rows(&self.nodes)
    }

    /// Local index of global node `v`, if included.
    pub fn local(&self, v: usize) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Number of nodes in the view.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, norm};
    use e2gcl_linalg::SeedRng;

    fn graph() -> CsrGraph {
        generators::erdos_renyi(60, 0.08, &mut SeedRng::new(3))
    }

    /// The identity view's adjacency must be **bitwise** equal to the
    /// full-graph normalisation, for both norm families — the mini-batch
    /// trainer and the serving engine rely on this exactness.
    #[test]
    fn full_view_adjacency_matches_norm_bitwise() {
        let g = graph();
        let view = GraphView::full(&g);
        for symmetric in [true, false] {
            let got = view.normalized_adjacency(symmetric).to_dense();
            let want = if symmetric {
                norm::normalized_adjacency(&g)
            } else {
                norm::row_normalized_adjacency(&g)
            }
            .to_dense();
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// An L-hop ego view with full-graph degrees reproduces the centre row
    /// of an L-layer propagation bitwise (the Theorem-1 exactness rule).
    #[test]
    fn ego_view_centre_aggregate_is_bitwise_exact() {
        let g = graph();
        let mut x = Matrix::zeros(g.num_nodes(), 4);
        let mut rng = SeedRng::new(9);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let layers = 2;
        let full = norm::normalized_adjacency(&g).spmm_power(&x, layers);
        for v in 0..g.num_nodes() {
            let view = GraphView::ego(&g, v, layers);
            let local = view
                .normalized_adjacency(true)
                .spmm_power(&view.features(&x), layers);
            let c = view.local(v).expect("centre included");
            assert_eq!(local.row(c), full.row(v), "node {v}");
        }
    }

    #[test]
    fn induced_matches_egonet_machinery() {
        let g = graph();
        let view = GraphView::ego(&g, 5, 2);
        let e = crate::ego::EgoNet::extract(&g, 5, 2);
        assert_eq!(view.nodes, e.nodes);
        assert_eq!(view.graph, e.graph);
        assert_eq!(view.local(5), Some(e.center));
    }

    #[test]
    fn degrees_are_full_graph_not_local() {
        // Path 0-1-2-3: the 1-hop view of 1 sees node 2 with local degree 1
        // but must record its full degree 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let view = GraphView::ego(&g, 1, 1);
        assert_eq!(view.nodes, vec![0, 1, 2]);
        let c2 = view.local(2).unwrap();
        assert_eq!(view.graph.degree(c2), 1);
        assert_eq!(view.degrees[c2], 2);
    }

    #[test]
    fn features_and_local_lookup() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (4, 2)]);
        let mut x = Matrix::zeros(5, 1);
        for v in 0..5 {
            x.set(v, 0, v as f32);
        }
        let view = GraphView::induced(&g, vec![0, 2, 4]);
        assert_eq!(view.features(&x).as_slice(), &[0.0, 2.0, 4.0]);
        assert_eq!(view.local(4), Some(2));
        assert_eq!(view.local(3), None);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }
}
