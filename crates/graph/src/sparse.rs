//! CSR sparse matrix with `f32` values, used for the normalised adjacency.

use e2gcl_linalg::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A sparse `f32` matrix in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from COO triplets; duplicates within a row are summed.
    ///
    /// Counting sort over rows: one pass sizes every row, a prefix sum
    /// turns the counts into placement cursors, and a second pass scatters
    /// the entries into a single flat buffer — replacing the previous
    /// `Vec<Vec<(u32, f32)>>` staging area (one heap allocation per row).
    /// Within a row, entries land in input order (the scatter is stable),
    /// then the same `sort_unstable_by_key` + duplicate fold as before runs
    /// on the row slice, so the result is bit-identical to the old builder.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        // Counts accumulate at next[r+1]; the prefix sum turns next[r] into
        // row r's start offset; the scatter advances next[r] to row r's end.
        let mut next = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            next[r + 1] += 1;
        }
        for r in 1..=rows {
            next[r] += next[r - 1];
        }
        let mut entries: Vec<(u32, f32)> = vec![(0, 0.0); triplets.len()];
        for &(r, c, v) in triplets {
            entries[next[r]] = (c as u32, v);
            next[r] += 1;
        }
        // After the scatter, next[r] is the end of row r (= start of row
        // r+1), so row r spans entries[prev_end..next[r]].
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        let mut col_indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut start = 0usize;
        for &end in next.iter().take(rows) {
            let row = &mut entries[start..end];
            start = end;
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                col_indices.push(c);
                values.push(v);
                i = j;
            }
            offsets.push(col_indices.len());
        }
        Self {
            rows,
            cols,
            offsets,
            col_indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.offsets[r];
        let hi = self.offsets[r + 1];
        self.col_indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sum of row `r`'s values.
    pub fn row_sum(&self, r: usize) -> f32 {
        let lo = self.offsets[r];
        let hi = self.offsets[r + 1];
        self.values[lo..hi].iter().sum()
    }

    /// Sparse × dense product `self * x`, parallelised over output rows.
    ///
    /// This is the hot kernel behind `A_n^L X` (Theorem 1) and every GCN
    /// layer forward/backward pass.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_impl(x, &mut out);
        out
    }

    /// [`SparseMatrix::spmm`] into a reusable output buffer (reshaped and
    /// zeroed; bit-identical result). The scratch-layer entry point used by
    /// the GCN forward/backward hot path so steady-state epochs allocate no
    /// new matrices here.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        out.reset_zeroed(self.rows, x.cols());
        self.spmm_impl(x, out);
    }

    fn spmm_impl(&self, x: &Matrix, out: &mut Matrix) {
        // Dense-column panel width: PANEL accumulators stay in registers
        // across all of a row's nonzeros instead of re-streaming the output
        // row once per nonzero. Each output element still accumulates over
        // the row's entries in ascending order with a single accumulator,
        // so the result is bit-identical to the naive loop.
        const PANEL: usize = 8;
        let d = x.cols();
        if out.as_mut_slice().is_empty() {
            return;
        }
        let xs = x.as_slice();
        #[cfg(target_arch = "x86_64")]
        {
            // Selection captured on the calling thread (rayon workers are
            // fresh OS threads with no thread-local dispatch override).
            let sel = e2gcl_linalg::dispatch::current();
            if sel.path == e2gcl_linalg::DispatchPath::Avx2 {
                let grain = sel.spmm.grain as usize;
                out.as_mut_slice()
                    .par_chunks_mut(grain * d)
                    .enumerate()
                    .for_each(|(ci, chunk)| {
                        for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                            let r = ci * grain + i;
                            let lo = self.offsets[r];
                            let hi = self.offsets[r + 1];
                            e2gcl_linalg::simd::call::spmm_row(
                                &self.col_indices[lo..hi],
                                &self.values[lo..hi],
                                xs,
                                d,
                                out_row,
                            );
                        }
                    });
                return;
            }
        }
        out.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(|(r, out_row)| {
                let lo = self.offsets[r];
                let hi = self.offsets[r + 1];
                let cols = &self.col_indices[lo..hi];
                let vals = &self.values[lo..hi];
                let d_main = d - d % PANEL;
                let mut j = 0;
                while j < d_main {
                    let mut acc = [0.0f32; PANEL];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let xp = &xs[c as usize * d + j..c as usize * d + j + PANEL];
                        for (s, &xv) in acc.iter_mut().zip(xp) {
                            *s += v * xv;
                        }
                    }
                    out_row[j..j + PANEL].copy_from_slice(&acc);
                    j += PANEL;
                }
                if d_main < d {
                    let tail = &mut out_row[d_main..];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let xp = &xs[c as usize * d + d_main..(c as usize + 1) * d];
                        for (o, &xv) in tail.iter_mut().zip(xp) {
                            *o += v * xv;
                        }
                    }
                }
            });
    }

    /// Applies `self` `power` times: `self^power * x`.
    pub fn spmm_power(&self, x: &Matrix, power: usize) -> Matrix {
        assert_eq!(self.rows, self.cols, "spmm_power needs a square matrix");
        let mut cur = x.clone();
        for _ in 0..power {
            cur = self.spmm(&cur);
        }
        cur
    }

    /// Sparse × dense vector product.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(c, v)| v * x[c]).sum())
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> SparseMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        SparseMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Densifies (tests / small graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m.set(r, c, m.get(r, c) + v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_dedupe_by_sum() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense().get(0, 0), 3.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, -1.0), (1, 2, 0.5), (2, 2, 3.0)],
        );
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let got = s.spmm(&x);
        let expect = s.to_dense().matmul(&x);
        assert_eq!(got, expect);
    }

    #[test]
    fn spmm_into_reuses_scratch_and_matches() {
        let s = SparseMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, -1.0), (1, 2, 0.5), (2, 2, 3.0)],
        );
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // Dirty, mis-shaped scratch must be reshaped and fully redefined.
        let mut out = Matrix::filled(1, 5, f32::NAN);
        s.spmm_into(&x, &mut out);
        assert_eq!(out, s.spmm(&x));
        // Second call with warm scratch is identical.
        s.spmm_into(&x, &mut out);
        assert_eq!(out, s.spmm(&x));
    }

    #[test]
    fn spmm_power_is_repeated_spmm() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let p2 = s.spmm_power(&x, 2);
        assert_eq!(p2, x); // swap twice = identity
        let p0 = s.spmm_power(&x, 0);
        assert_eq!(p0, x);
    }

    #[test]
    fn spmv_known() {
        let s = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        assert_eq!(s.spmv(&[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let s = SparseMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 2.0)]);
        let t = s.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), s);
    }

    /// The counting-sort builder must match a naive per-row reference
    /// exactly, including duplicate-sum order, on scattered input with
    /// duplicates, empty rows, and unsorted columns.
    #[test]
    fn counting_sort_builder_matches_reference() {
        let rows = 7;
        let cols = 5;
        // Deterministic scatter with duplicates (incl. a triple) and rows
        // 2 and 5 left empty.
        let triplets: Vec<(usize, usize, f32)> = vec![
            (4, 3, 0.5),
            (0, 4, 1.0),
            (6, 0, -2.0),
            (0, 1, 3.0),
            (4, 3, 0.25),
            (1, 2, 7.0),
            (0, 4, -0.125),
            (3, 0, 1.5),
            (4, 3, 0.125),
            (6, 4, 2.5),
            (1, 0, -1.0),
            (3, 2, 0.75),
        ];
        let got = SparseMatrix::from_triplets(rows, cols, &triplets);
        // Naive reference: the pre-counting-sort construction.
        let mut per_row: Vec<Vec<(u32, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in &triplets {
            per_row[r].push((c as u32, v));
        }
        let mut offsets = vec![0usize];
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                col_indices.push(c);
                values.push(v);
                i = j;
            }
            offsets.push(col_indices.len());
        }
        assert_eq!(got.offsets, offsets);
        assert_eq!(got.col_indices, col_indices);
        for (a, b) in got.values.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn row_sum_and_entries() {
        let s = SparseMatrix::from_triplets(1, 4, &[(0, 1, 0.25), (0, 3, 0.75)]);
        assert!((s.row_sum(0) - 1.0).abs() < 1e-6);
        let entries: Vec<_> = s.row_entries(0).collect();
        assert_eq!(entries, vec![(1, 0.25), (3, 0.75)]);
    }
}
