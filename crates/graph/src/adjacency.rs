//! Mutable adjacency-list graph used while *editing* graphs.
//!
//! The view generator (Alg. 3) builds each positive view by adding edges one
//! at a time; the augmentation library (Prop. 1) needs delete/add of both
//! edges and nodes. [`AdjacencyList`] supports those edits cheaply and then
//! freezes into a [`CsrGraph`] for the GNN forward pass.

use crate::CsrGraph;
use std::collections::BTreeSet;

/// A mutable undirected graph as per-node sorted neighbour sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdjacencyList {
    adj: Vec<BTreeSet<u32>>,
}

impl AdjacencyList {
    /// An empty graph over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            adj: vec![BTreeSet::new(); num_nodes],
        }
    }

    /// Converts from CSR.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut out = Self::new(g.num_nodes());
        for v in 0..g.num_nodes() {
            out.adj[v] = g.neighbors(v).iter().copied().collect();
        }
        out
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// True if the undirected edge exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&(v as u32))
    }

    /// Adds the undirected edge `(u, v)`. Returns false if it already existed
    /// or is a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        let added = self.adj[u].insert(v as u32);
        if added {
            self.adj[v].insert(u as u32);
        }
        added
    }

    /// Removes the undirected edge `(u, v)`. Returns false if absent.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let removed = self.adj[u].remove(&(v as u32));
        if removed {
            self.adj[v].remove(&(u as u32));
        }
        removed
    }

    /// Removes every edge incident to `v` (node isolation; used by the
    /// node-dropping augmentation, which keeps indices stable).
    pub fn isolate_node(&mut self, v: usize) {
        let ns: Vec<u32> = self.adj[v].iter().copied().collect();
        for u in ns {
            self.remove_edge(v, u as usize);
        }
    }

    /// Appends a fresh isolated node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(BTreeSet::new());
        self.adj.len() - 1
    }

    /// Neighbour iterator of `v` (ascending).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().map(|&u| u as usize)
    }

    /// Freezes into an immutable CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_adjacency(
            self.adj
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut a = AdjacencyList::new(3);
        assert!(a.add_edge(0, 1));
        assert!(!a.add_edge(0, 1)); // duplicate
        assert!(!a.add_edge(1, 1)); // self loop
        assert!(a.has_edge(1, 0));
        assert_eq!(a.num_edges(), 1);
        assert!(a.remove_edge(1, 0));
        assert!(!a.remove_edge(1, 0));
        assert_eq!(a.num_edges(), 0);
    }

    #[test]
    fn csr_roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let a = AdjacencyList::from_csr(&g);
        assert_eq!(a.to_csr(), g);
    }

    #[test]
    fn isolate_node_removes_all_incident() {
        let mut a =
            AdjacencyList::from_csr(&CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]));
        a.isolate_node(0);
        assert_eq!(a.degree(0), 0);
        assert_eq!(a.num_edges(), 1);
        assert!(a.has_edge(1, 2));
    }

    #[test]
    fn add_node_grows() {
        let mut a = AdjacencyList::new(2);
        let v = a.add_node();
        assert_eq!(v, 2);
        assert!(a.add_edge(v, 0));
        assert_eq!(a.to_csr().num_nodes(), 3);
    }
}
