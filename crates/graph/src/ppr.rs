//! Personalised PageRank (forward-push) and PPR graph diffusion.
//!
//! The MVGRL baseline's second view is a diffusion graph: connect each node
//! to the nodes with the largest personalised-PageRank mass from it. We use
//! the classic Andersen–Chung–Lang forward-push algorithm so diffusion stays
//! near-linear in graph size.

use crate::CsrGraph;

/// Approximate PPR vector from `src` with teleport `alpha` and push
/// threshold `epsilon` (residual per degree). Returns `(node, mass)` pairs
/// with positive mass, unsorted.
pub fn ppr_push(g: &CsrGraph, src: usize, alpha: f32, epsilon: f32) -> Vec<(usize, f32)> {
    let n = g.num_nodes();
    let mut p = vec![0.0f32; n];
    let mut r = vec![0.0f32; n];
    r[src] = 1.0;
    let mut queue = vec![src];
    let mut in_queue = vec![false; n];
    in_queue[src] = true;
    while let Some(v) = queue.pop() {
        in_queue[v] = false;
        let deg = g.degree(v).max(1) as f32;
        if r[v] < epsilon * deg {
            continue;
        }
        let rv = r[v];
        p[v] += alpha * rv;
        r[v] = 0.0;
        let push = (1.0 - alpha) * rv / deg;
        if g.degree(v) == 0 {
            // Dangling node: keep the mass at the source (standard fix).
            r[src] += (1.0 - alpha) * rv;
            if !in_queue[src] && r[src] >= epsilon * g.degree(src).max(1) as f32 {
                in_queue[src] = true;
                queue.push(src);
            }
            continue;
        }
        for &u in g.neighbors(v) {
            let u = u as usize;
            r[u] += push;
            if !in_queue[u] && r[u] >= epsilon * g.degree(u).max(1) as f32 {
                in_queue[u] = true;
                queue.push(u);
            }
        }
    }
    p.into_iter()
        .enumerate()
        .filter(|&(_, mass)| mass > 0.0)
        .collect()
}

/// Builds a PPR-diffusion graph: each node keeps edges to its `top_k`
/// highest-PPR non-self targets. The result is symmetrised.
pub fn ppr_diffusion_graph(g: &CsrGraph, alpha: f32, epsilon: f32, top_k: usize) -> CsrGraph {
    let n = g.num_nodes();
    let mut edges = Vec::new();
    for v in 0..n {
        let mut mass = ppr_push(g, v, alpha, epsilon);
        mass.retain(|&(u, _)| u != v);
        mass.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
        for &(u, _) in mass.iter().take(top_k) {
            edges.push((v, u));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppr_mass_concentrates_at_source() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // High restart probability keeps the mass near the source.
        let p = ppr_push(&g, 0, 0.5, 1e-7);
        let get = |v: usize| p.iter().find(|&&(u, _)| u == v).map_or(0.0, |&(_, m)| m);
        assert!(get(0) > get(1));
        assert!(get(1) > get(3));
    }

    #[test]
    fn ppr_total_mass_close_to_one() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = ppr_push(&g, 0, 0.15, 1e-7);
        let total: f32 = p.iter().map(|&(_, m)| m).sum();
        assert!(total > 0.9 && total <= 1.0 + 1e-4, "total {total}");
    }

    #[test]
    fn diffusion_graph_adds_two_hop_links() {
        // Path 0-1-2: diffusion with top_k=2 should link 0 and 2.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let d = ppr_diffusion_graph(&g, 0.2, 1e-6, 2);
        assert!(d.has_edge(0, 2));
    }

    #[test]
    fn isolated_source_keeps_self_mass() {
        let g = CsrGraph::from_edges(2, &[]);
        let p = ppr_push(&g, 0, 0.2, 1e-6);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, 0);
        assert!(p[0].1 > 0.9);
    }
}
