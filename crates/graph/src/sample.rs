//! Deterministic neighbour-sampled subgraph batches.
//!
//! Mini-batch training (DESIGN.md §13) trains on a [`GraphView`] sampled
//! around a batch of seed nodes instead of the full adjacency. The sampler
//! here is the GraphSAGE-style fanout expansion: starting from the seeds,
//! each hop keeps at most `fanout` neighbours per frontier node, chosen
//! without replacement from the caller's [`SeedRng`]. The view is then the
//! subgraph *induced* on the union of sampled nodes (so every edge between
//! two sampled nodes participates, not only the sampled expansion edges),
//! with full-graph degrees per the exactness rule of [`crate::view`].
//!
//! Determinism scope: given the same graph, seed list and RNG stream
//! position, the sampled view is identical — frontier nodes are expanded in
//! discovery order and the only RNG consumer is the per-node subset draw.
//! When `fanout` is `None`, or a node's degree is within the fanout, **no
//! randomness is consumed at all**; a `fanout: None` sampler is therefore a
//! deterministic L-hop neighbourhood expansion, and with every node seeded
//! it degenerates to the identity view.

use crate::view::GraphView;
use crate::CsrGraph;
use e2gcl_linalg::SeedRng;

/// A seed-scoped L-hop neighbour sampler (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborSampler {
    /// Expansion depth — normally the encoder's receptive hops `L`.
    pub hops: usize,
    /// Per-node neighbour budget per hop; `None` keeps every neighbour.
    pub fanout: Option<usize>,
}

impl NeighborSampler {
    /// A sampler expanding `hops` hops with the given per-node budget.
    pub fn new(hops: usize, fanout: Option<usize>) -> Self {
        Self { hops, fanout }
    }

    /// Samples the view around `seeds` (any order, duplicates allowed).
    ///
    /// # Panics
    /// Panics if a seed is out of range.
    pub fn sample(&self, g: &CsrGraph, seeds: &[usize], rng: &mut SeedRng) -> GraphView {
        let n = g.num_nodes();
        let mut visited = vec![false; n];
        let mut nodes: Vec<usize> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            assert!(s < n, "seed {s} out of range for {n} nodes");
            if !visited[s] {
                visited[s] = true;
                nodes.push(s);
            }
        }
        let mut frontier: Vec<usize> = nodes.clone();
        for _ in 0..self.hops {
            let mut next = Vec::new();
            for &u in &frontier {
                let neigh = g.neighbors(u);
                let take_all = match self.fanout {
                    None => true,
                    Some(f) => neigh.len() <= f,
                };
                if take_all {
                    for &w in neigh {
                        let w = w as usize;
                        if !visited[w] {
                            visited[w] = true;
                            next.push(w);
                        }
                    }
                } else if let Some(f) = self.fanout {
                    for i in rng.sample_without_replacement(neigh.len(), f) {
                        let w = neigh[i] as usize;
                        if !visited[w] {
                            visited[w] = true;
                            next.push(w);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            nodes.extend_from_slice(&next);
            frontier = next;
        }
        nodes.sort_unstable();
        GraphView::induced(g, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn graph() -> CsrGraph {
        generators::erdos_renyi(80, 0.1, &mut SeedRng::new(11))
    }

    #[test]
    fn unbounded_sampler_is_the_khop_neighbourhood() {
        let g = graph();
        let s = NeighborSampler::new(2, None);
        let view = s.sample(&g, &[7], &mut SeedRng::new(0));
        let mut want = g.khop_neighbors(7, 2);
        let pos = want.binary_search(&7).unwrap_err();
        want.insert(pos, 7);
        assert_eq!(view.nodes, want);
    }

    #[test]
    fn unbounded_sampler_consumes_no_randomness() {
        let g = graph();
        let s = NeighborSampler::new(2, None);
        let mut rng = SeedRng::new(5);
        let before = rng.state();
        let _ = s.sample(&g, &[3, 9, 40], &mut rng);
        assert_eq!(rng.state(), before, "fanout=None must not draw");
    }

    #[test]
    fn all_seeds_unbounded_is_the_identity_view() {
        let g = graph();
        let seeds: Vec<usize> = (0..g.num_nodes()).collect();
        let view = NeighborSampler::new(2, None).sample(&g, &seeds, &mut SeedRng::new(1));
        assert_eq!(view.nodes, seeds);
        assert_eq!(view.graph, g);
    }

    #[test]
    fn fanout_bounds_expansion_and_is_deterministic() {
        let g = graph();
        let s = NeighborSampler::new(2, Some(2));
        let a = s.sample(&g, &[0, 17], &mut SeedRng::new(42));
        let b = s.sample(&g, &[0, 17], &mut SeedRng::new(42));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.graph, b.graph);
        // Bounded strictly below the unbounded expansion on this graph.
        let full = s.clone();
        let unbounded = NeighborSampler::new(2, None).sample(&g, &[0, 17], &mut SeedRng::new(0));
        assert!(a.len() < unbounded.len(), "fanout {full:?} did not bound");
        // Every sampled node set is a subset of the unbounded one.
        assert!(a.nodes.iter().all(|v| unbounded.nodes.contains(v)));
    }

    #[test]
    fn seeds_always_included_and_deduped() {
        let g = graph();
        let view = NeighborSampler::new(0, Some(1)).sample(&g, &[5, 5, 2], &mut SeedRng::new(0));
        assert_eq!(view.nodes, vec![2, 5]);
    }

    #[test]
    fn isolated_seed_yields_singleton_view() {
        let g = CsrGraph::from_edges(4, &[(1, 2)]);
        let view = NeighborSampler::new(3, Some(4)).sample(&g, &[0], &mut SeedRng::new(0));
        assert_eq!(view.nodes, vec![0]);
        assert_eq!(view.graph.num_edges(), 0);
    }
}
