//! L-hop ego-network extraction.
//!
//! `G_v(V_v, A_v, X_v)` in the paper: the subgraph induced on the nodes
//! within `L` hops of `v`. The contrastive loss compares the representation
//! of `v` computed on its ego net with representations computed on the
//! generated positive views.
//!
//! An [`EgoNet`] is a centred [`crate::view::GraphView`] — the induced
//! subgraph is built by the shared view machinery, this type just carries
//! the centre index the per-node loss needs.

use crate::view::GraphView;
use crate::CsrGraph;
use e2gcl_linalg::Matrix;

/// An extracted ego network: induced subgraph + node remapping.
#[derive(Clone, Debug)]
pub struct EgoNet {
    /// The induced subgraph over local indices.
    pub graph: CsrGraph,
    /// `nodes[local] = global` (sorted ascending; `nodes[center]` is `v`).
    pub nodes: Vec<usize>,
    /// Local index of the ego node `v`.
    pub center: usize,
}

impl EgoNet {
    /// Extracts the `hops`-hop ego net of `v`.
    pub fn extract(g: &CsrGraph, v: usize, hops: usize) -> EgoNet {
        let mut nodes = g.khop_neighbors(v, hops);
        // Insert the centre preserving the sort order.
        let pos = nodes.binary_search(&v).unwrap_err();
        nodes.insert(pos, v);
        Self::induced(g, nodes, v)
    }

    /// Builds the subgraph induced on `nodes` (sorted, must contain `v`).
    pub fn induced(g: &CsrGraph, nodes: Vec<usize>, v: usize) -> EgoNet {
        let center = nodes.binary_search(&v).expect("center not in node set");
        let view = GraphView::induced(g, nodes);
        EgoNet {
            graph: view.graph,
            nodes: view.nodes,
            center,
        }
    }

    /// Gathers the feature rows of this ego net from the full feature matrix.
    pub fn features(&self, x: &Matrix) -> Matrix {
        x.select_rows(&self.nodes)
    }

    /// Number of nodes in the ego net.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ego net contains only the centre.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> CsrGraph {
        // 0 is the hub; 1..=4 leaves; 4-5 dangles one more hop.
        CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)])
    }

    #[test]
    fn one_hop_of_hub() {
        let e = EgoNet::extract(&star(), 0, 1);
        assert_eq!(e.nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(e.center, 0);
        assert_eq!(e.graph.num_edges(), 4);
    }

    #[test]
    fn two_hop_of_leaf() {
        let e = EgoNet::extract(&star(), 1, 2);
        assert_eq!(e.nodes, vec![0, 1, 2, 3, 4]); // 5 is 3 hops away
        assert_eq!(e.center, 1);
        // Induced edges: all hub-leaf edges among included nodes.
        assert_eq!(e.graph.num_edges(), 4);
        assert!(e.graph.has_edge(e.center, 0)); // local hub index is 0
    }

    #[test]
    fn isolated_center() {
        let g = CsrGraph::from_edges(3, &[(1, 2)]);
        let e = EgoNet::extract(&g, 0, 2);
        assert_eq!(e.nodes, vec![0]);
        assert!(e.is_empty());
    }

    #[test]
    fn features_follow_node_order() {
        let g = star();
        let mut x = Matrix::zeros(6, 1);
        for v in 0..6 {
            x.set(v, 0, v as f32);
        }
        let e = EgoNet::extract(&g, 4, 1);
        assert_eq!(e.nodes, vec![0, 4, 5]);
        let fx = e.features(&x);
        assert_eq!(fx.as_slice(), &[0.0, 4.0, 5.0]);
    }

    #[test]
    fn induced_preserves_only_internal_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let e = EgoNet::induced(&g, vec![0, 1, 3], 1);
        assert_eq!(e.graph.num_edges(), 1); // only (0,1) survives
        assert!(e.graph.has_edge(0, 1));
    }

    #[test]
    fn zero_hops_is_the_bare_centre() {
        let e = EgoNet::extract(&star(), 0, 0);
        assert_eq!(e.nodes, vec![0]);
        assert_eq!(e.center, 0);
        assert_eq!(e.graph.num_nodes(), 1);
        assert_eq!(e.graph.num_edges(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn isolated_nodes_stay_out_of_every_ego_net() {
        // 3 is isolated; ego nets of connected nodes never include it, and
        // its own ego net is a singleton at any depth.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
        for hops in 0..4 {
            let e = EgoNet::extract(&g, 3, hops);
            assert_eq!(e.nodes, vec![3]);
            assert_eq!(e.center, 0);
        }
        let e = EgoNet::extract(&g, 0, 3);
        assert_eq!(e.nodes, vec![0, 1, 2]);
    }

    #[test]
    fn centre_on_a_graph_frontier_keeps_partial_neighbourhood() {
        // Path 0-1-2-3-4: from the end node 4, hop budget 2 reaches only
        // {2, 3, 4}; node 2 sits on the extraction frontier, so its edge to
        // 1 is cut while 2-3 and 3-4 survive.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = EgoNet::extract(&g, 4, 2);
        assert_eq!(e.nodes, vec![2, 3, 4]);
        assert_eq!(e.center, 2);
        assert_eq!(e.graph.num_edges(), 2);
        assert!(e.graph.has_edge(0, 1)); // local (2,3)
        assert!(e.graph.has_edge(1, 2)); // local (3,4)
                                         // The frontier node's local degree is smaller than its full degree.
        assert_eq!(e.graph.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }
}
