//! GCN adjacency normalisation (Kipf & Welling).
//!
//! `A_n = D̃^{-1/2} (A + I) D̃^{-1/2}` with `D̃ = D + I`. This is the matrix
//! in Eq. (1) of the paper and the backbone of the Theorem-1 raw aggregate
//! `R = A_n^L X`.

use crate::{CsrGraph, SparseMatrix};
use e2gcl_linalg::Matrix;

/// Builds the symmetric GCN-normalised adjacency `D̃^{-1/2}(A+I)D̃^{-1/2}`.
pub fn normalized_adjacency(g: &CsrGraph) -> SparseMatrix {
    let n = g.num_nodes();
    let inv_sqrt: Vec<f32> = (0..n)
        .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
        .collect();
    let mut triplets = Vec::with_capacity(2 * g.num_edges() + n);
    for v in 0..n {
        triplets.push((v, v, inv_sqrt[v] * inv_sqrt[v]));
        for &u in g.neighbors(v) {
            let u = u as usize;
            triplets.push((v, u, inv_sqrt[v] * inv_sqrt[u]));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// Row-stochastic normalisation `D̃^{-1}(A + I)` (used by PPR / diffusion).
pub fn row_normalized_adjacency(g: &CsrGraph) -> SparseMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(2 * g.num_edges() + n);
    for v in 0..n {
        let inv = 1.0 / (g.degree(v) + 1) as f32;
        triplets.push((v, v, inv));
        for &u in g.neighbors(v) {
            triplets.push((v, u as usize, inv));
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// The Theorem-1 raw aggregated representation `R = A_n^L X`.
///
/// This is the quantity the node selector clusters and scores on: it captures
/// "aggregating information from neighbors" without any learned parameters.
pub fn raw_aggregate(g: &CsrGraph, x: &Matrix, layers: usize) -> Matrix {
    normalized_adjacency(g).spmm_power(x, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_adjacency_symmetric() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let a = normalized_adjacency(&g);
        let d = a.to_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn isolated_node_gets_identity_entry() {
        let g = CsrGraph::from_edges(2, &[]);
        let a = normalized_adjacency(&g);
        let d = a.to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn known_two_node_values() {
        // Two connected nodes: deg+1 = 2 each, so every entry is 1/2.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let d = normalized_adjacency(&g).to_dense();
        for i in 0..2 {
            for j in 0..2 {
                assert!((d.get(i, j) - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (3, 4), (1, 2)]);
        let a = row_normalized_adjacency(&g);
        for r in 0..5 {
            assert!((a.row_sum(r) - 1.0).abs() < 1e-6, "row {r}");
        }
    }

    #[test]
    fn raw_aggregate_preserves_constant_vector_on_regular_graph() {
        // On a d-regular graph the normalised adjacency has row sums 1, so a
        // constant feature stays constant under aggregation.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // 2-regular cycle
        let x = Matrix::filled(4, 1, 1.0);
        let r = raw_aggregate(&g, &x, 3);
        for v in 0..4 {
            assert!((r.get(v, 0) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn raw_aggregate_zero_layers_is_input() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(raw_aggregate(&g, &x, 0), x);
    }
}
