//! Structural graph statistics: triangles, clustering, k-cores.
//!
//! Used by the dataset-statistics tooling and by the graph-classification
//! analogs (whose classes differ in motif content by construction).

use crate::CsrGraph;

/// Counts triangles incident to each node (each triangle contributes 1 to
/// each of its three corners).
pub fn triangle_counts(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut counts = vec![0usize; n];
    // For each edge (u, v) with u < v, intersect sorted neighbour lists and
    // count common neighbours w > v so each triangle is found exactly once.
    for u in 0..n {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if v <= u {
                continue;
            }
            let (mut i, mut j) = (0usize, 0usize);
            let nu = g.neighbors(u);
            let nv = g.neighbors(v);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if (a as usize) > v {
                            counts[u] += 1;
                            counts[v] += 1;
                            counts[a as usize] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Total number of distinct triangles.
pub fn total_triangles(g: &CsrGraph) -> usize {
    triangle_counts(g).iter().sum::<usize>() / 3
}

/// Local clustering coefficient per node: `2·T(v) / (deg(v)·(deg(v)−1))`,
/// zero for degree < 2.
pub fn clustering_coefficients(g: &CsrGraph) -> Vec<f64> {
    let tri = triangle_counts(g);
    (0..g.num_nodes())
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Mean local clustering coefficient.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    let cc = clustering_coefficients(g);
    if cc.is_empty() {
        0.0
    } else {
        cc.iter().sum::<f64>() / cc.len() as f64
    }
}

/// Core number of every node (the largest `k` such that the node survives
/// in the `k`-core), via the standard peeling algorithm.
pub fn core_numbers(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().cloned().max().unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket at or above zero.
        let mut d = 0;
        loop {
            while d <= max_deg && buckets[d].is_empty() {
                d += 1;
            }
            if d > max_deg {
                return core; // all removed
            }
            let v = *buckets[d].last().unwrap();
            if removed[v] || degree[v] != d {
                buckets[d].pop();
                continue;
            }
            break;
        }
        let v = buckets[d].pop().unwrap();
        removed[v] = true;
        current = current.max(d);
        core[v] = current;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !removed[u] && degree[u] > 0 {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    core
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.num_nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // Triangle 0-1-2 with a tail 2-3.
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn triangle_counting() {
        let g = triangle_plus_tail();
        assert_eq!(total_triangles(&g), 1);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1, 0]);
    }

    #[test]
    fn complete_graph_triangles() {
        let k4 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(total_triangles(&k4), 4);
        // Every node in K4 has clustering coefficient 1.
        assert!(clustering_coefficients(&k4)
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-9));
    }

    #[test]
    fn clustering_coefficient_values() {
        let g = triangle_plus_tail();
        let cc = clustering_coefficients(&g);
        assert!((cc[0] - 1.0).abs() < 1e-9); // deg 2, 1 triangle
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-9); // deg 3, 1 of 3 pairs
        assert_eq!(cc[3], 0.0); // degree 1
    }

    #[test]
    fn core_numbers_triangle_tail() {
        let g = triangle_plus_tail();
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn core_numbers_star() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_empty_and_k4() {
        let e = CsrGraph::from_edges(3, &[]);
        assert_eq!(core_numbers(&e), vec![0, 0, 0]);
        let k4 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(core_numbers(&k4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = triangle_plus_tail();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[1], 1); // node 3
        assert_eq!(h[2], 2); // nodes 0, 1
        assert_eq!(h[3], 1); // node 2
    }
}
