//! Node centrality measures.
//!
//! The paper's edge/feature scores use log-degree centrality
//! `φ_c(u) = log(D_u + 1)` (§IV-C1, following GCA). PageRank centrality is
//! provided as well for the ablation that swaps the centrality measure.

use crate::{norm, CsrGraph};

/// Log-degree centrality `φ_c(v) = ln(D_v + 1)` for every node.
pub fn degree_centrality(g: &CsrGraph) -> Vec<f32> {
    (0..g.num_nodes())
        .map(|v| ((g.degree(v) + 1) as f32).ln())
        .collect()
}

/// Power-iteration PageRank with damping `alpha`, `iters` sweeps.
pub fn pagerank(g: &CsrGraph, alpha: f32, iters: usize) -> Vec<f32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let w = norm::row_normalized_adjacency(g).transpose();
    let mut p = vec![1.0 / n as f32; n];
    let teleport = (1.0 - alpha) / n as f32;
    for _ in 0..iters {
        let mut next = w.spmv(&p);
        for v in &mut next {
            *v = alpha * *v + teleport;
        }
        p = next;
    }
    p
}

/// Eigenvector centrality via power iteration on `A + I`.
pub fn eigenvector_centrality(g: &CsrGraph, iters: usize) -> Vec<f32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![1.0f32; n];
    for _ in 0..iters {
        let mut next = vec![0.0f32; n];
        for v in 0..n {
            next[v] += x[v];
            for &u in g.neighbors(v) {
                next[v] += x[u as usize];
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in &mut next {
            *v /= norm;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_centrality_is_log_deg_plus_one() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let c = degree_centrality(&g);
        assert!((c[0] - 3.0f32.ln()).abs() < 1e-6);
        assert!((c[1] - 2.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn pagerank_sums_to_one_and_favours_hub() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = pagerank(&g, 0.85, 50);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-3, "sum {s}");
        for leaf in 1..5 {
            assert!(p[0] > p[leaf], "hub should dominate");
        }
    }

    #[test]
    fn eigenvector_centrality_hub_dominates() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let c = eigenvector_centrality(&g, 100);
        assert!(c[0] > c[1]);
        assert!((c[1] - c[2]).abs() < 1e-5); // symmetric leaves agree
    }

    #[test]
    fn empty_graph_ok() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(pagerank(&g, 0.85, 10).is_empty());
        assert!(eigenvector_centrality(&g, 10).is_empty());
    }
}
