//! BFS utilities and connected components.

use crate::CsrGraph;
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &CsrGraph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labels in `[0, k)`; returns `(labels, k)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = next;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if label[u] == usize::MAX {
                    label[u] = next;
                    q.push_back(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Length of the shortest path between `a` and `b`, or `None` if disconnected.
pub fn shortest_path_len(g: &CsrGraph, a: usize, b: usize) -> Option<usize> {
    let d = bfs_distances(g, a)[b];
    (d != usize::MAX).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn components_count() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn shortest_path_cases() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(shortest_path_len(&g, 0, 2), Some(2));
        assert_eq!(shortest_path_len(&g, 0, 0), Some(0));
        assert_eq!(shortest_path_len(&g, 0, 4), None);
    }
}
