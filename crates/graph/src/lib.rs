//! Graph substrate for the E²GCL reproduction.
//!
//! Everything the paper's algorithms need from "a graph library" lives here:
//!
//! * [`CsrGraph`] — an immutable, undirected graph in compressed-sparse-row
//!   form (the pre-training graph `G(V, A, X)` minus the features, which are
//!   a [`e2gcl_linalg::Matrix`]).
//! * [`SparseMatrix`] — CSR with `f32` values, used for the GCN-normalised
//!   adjacency `A_n = D̃^{-1/2}(A + I)D̃^{-1/2}` and its SpMM products
//!   (`A_n^L X`, the Theorem-1 raw aggregate).
//! * [`AdjacencyList`] — a mutable edge-set representation used by the view
//!   generator when it edits a node's local subgraph.
//! * [`GraphView`] — the shared induced-subgraph primitive (local↔global
//!   node map + full-graph degrees) behind both mini-batch training and
//!   inductive serving, with the exactness-proving normalised adjacency.
//! * [`NeighborSampler`] — deterministic seed-scoped fanout sampling of
//!   [`GraphView`] batches.
//! * ego-net extraction, BFS / connected components, personalised-PageRank
//!   diffusion (for the MVGRL baseline), degree centrality, and the random
//!   graph generators behind the synthetic datasets.

pub mod adjacency;
pub mod centrality;
pub mod csr;
pub mod ego;
pub mod generators;
pub mod norm;
pub mod ppr;
pub mod sample;
pub mod sparse;
pub mod stats;
pub mod traversal;
pub mod view;

pub use adjacency::AdjacencyList;
pub use csr::CsrGraph;
pub use sample::NeighborSampler;
pub use sparse::SparseMatrix;
pub use view::GraphView;
