//! Immutable undirected graph in compressed-sparse-row form.

use serde::{Deserialize, Serialize};

/// An undirected, unweighted graph stored as CSR adjacency.
///
/// Invariants (checked in debug builds and by the property tests):
/// * neighbour lists are sorted ascending and duplicate-free;
/// * the adjacency is symmetric: `u ∈ N(v) ⇔ v ∈ N(u)`;
/// * no self-loops are stored (the GCN normalisation adds `I` itself).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: usize,
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph from an edge list over `num_nodes` nodes.
    ///
    /// Edges are symmetrised and deduplicated; self-loops are dropped.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for &(u, v) in edges {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range"
            );
            if u == v {
                continue;
            }
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Self::from_adjacency(adj)
    }

    /// Builds a graph from per-node neighbour lists (symmetrised + deduped).
    pub fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let num_nodes = adj.len();
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0);
        let total: usize = adj.iter().map(|l| l.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for list in &adj {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted/dup list");
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self {
            num_nodes,
            offsets,
            neighbors,
        }
    }

    /// Builds a graph directly from prebuilt CSR parts — the zero-copy
    /// constructor the streaming dataset builder uses, so a million-node
    /// graph never round-trips through per-node `Vec`s.
    ///
    /// The parts must already satisfy every [`CsrGraph`] invariant (sorted
    /// duplicate-free neighbour lists, symmetry, no self-loops); this is
    /// checked by [`Self::validate`].
    ///
    /// # Panics
    /// Panics if the parts violate an invariant.
    pub fn from_csr_parts(num_nodes: usize, offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        let g = Self {
            num_nodes,
            offsets,
            neighbors,
        };
        if let Err(msg) = g.validate() {
            panic!("from_csr_parts: {msg}");
        }
        g
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `|E|` (each edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_nodes as f64
    }

    /// Sorted neighbour slice of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// True if the edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (v as usize) > u)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Nodes within `hops` hops of `v`, **excluding** `v` itself
    /// (`N_v^l` in the paper's notation), sorted ascending.
    pub fn khop_neighbors(&self, v: usize, hops: usize) -> Vec<usize> {
        let mut visited = vec![false; self.num_nodes];
        visited[v] = true;
        let mut frontier = vec![v];
        let mut out = Vec::new();
        for _ in 0..hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in self.neighbors(u) {
                    let w = w as usize;
                    if !visited[w] {
                        visited[w] = true;
                        next.push(w);
                        out.push(w);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out.sort_unstable();
        out
    }

    /// Degree sequence of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes).map(|v| self.degree(v)).collect()
    }

    /// Checks structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_nodes + 1 {
            return Err("offset length mismatch".into());
        }
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("last offset != neighbor count".into());
        }
        for v in 0..self.num_nodes {
            let ns = self.neighbors(v);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("node {v}: neighbours not strictly sorted"));
            }
            for &u in ns {
                let u = u as usize;
                if u >= self.num_nodes {
                    return Err(format!("node {v}: neighbour {u} out of range"));
                }
                if u == v {
                    return Err(format!("node {v}: self loop"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn symmetrised_and_deduped() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2)); // self loop dropped
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2, 4]);
    }

    #[test]
    fn edges_iter_each_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 4);
        assert!(es.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn khop_neighbors_path() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.khop_neighbors(0, 1), vec![1]);
        assert_eq!(g.khop_neighbors(0, 2), vec![1, 2]);
        assert_eq!(g.khop_neighbors(2, 2), vec![0, 1, 3, 4]);
        assert_eq!(g.khop_neighbors(0, 10), vec![1, 2, 3, 4]); // saturates
    }

    #[test]
    fn khop_excludes_self_on_cycles() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.khop_neighbors(0, 5), vec![1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn from_csr_parts_round_trips() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let rebuilt = CsrGraph::from_csr_parts(4, g.offsets.clone(), g.neighbors.clone());
        assert_eq!(rebuilt, g);
        rebuilt.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "from_csr_parts")]
    fn from_csr_parts_rejects_asymmetric_input() {
        // 0 lists 1 as a neighbour but not vice versa.
        let _ = CsrGraph::from_csr_parts(2, vec![0, 1, 1], vec![1]);
    }
}
