//! Property-based tests of the graph substrate invariants.

use e2gcl_graph::{norm, AdjacencyList, CsrGraph, SparseMatrix};
use e2gcl_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: an arbitrary edge list over `n` nodes (self-loops and
/// duplicates included on purpose — the constructor must handle them).
fn edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..4 * n)
}

const N: usize = 12;

proptest! {
    /// CSR invariants hold for any edge list.
    #[test]
    fn csr_invariants(es in edges(N)) {
        let g = CsrGraph::from_edges(N, &es);
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
        // Handshake lemma.
        let degree_sum: usize = (0..N).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// `has_edge` agrees with the edge iterator, symmetrically.
    #[test]
    fn has_edge_consistent(es in edges(N)) {
        let g = CsrGraph::from_edges(N, &es);
        let set: std::collections::HashSet<(usize, usize)> = g.edges().collect();
        for u in 0..N {
            for v in 0..N {
                let expect = set.contains(&(u.min(v), u.max(v))) && u != v;
                prop_assert_eq!(g.has_edge(u, v), expect);
                prop_assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    /// AdjacencyList round-trips through CSR.
    #[test]
    fn adjacency_roundtrip(es in edges(N)) {
        let g = CsrGraph::from_edges(N, &es);
        prop_assert_eq!(AdjacencyList::from_csr(&g).to_csr(), g);
    }

    /// Removing then re-adding an edge restores the graph.
    #[test]
    fn edit_inverse(es in edges(N), u in 0..N, v in 0..N) {
        let g = CsrGraph::from_edges(N, &es);
        let mut a = AdjacencyList::from_csr(&g);
        if a.has_edge(u, v) {
            a.remove_edge(u, v);
            a.add_edge(u, v);
        } else if u != v {
            a.add_edge(u, v);
            a.remove_edge(u, v);
        }
        prop_assert_eq!(a.to_csr(), g);
    }

    /// The symmetric GCN normalisation is symmetric with entries in (0, 1],
    /// and its spectral radius is at most 1 (checked via the power method
    /// proxy: repeated application never grows a vector's norm).
    #[test]
    fn normalized_adjacency_contraction(es in edges(N)) {
        let g = CsrGraph::from_edges(N, &es);
        let a = norm::normalized_adjacency(&g);
        let dense = a.to_dense();
        for i in 0..N {
            for j in 0..N {
                prop_assert!((dense.get(i, j) - dense.get(j, i)).abs() < 1e-6);
                prop_assert!(dense.get(i, j) >= 0.0 && dense.get(i, j) <= 1.0 + 1e-6);
            }
        }
        let x = Matrix::filled(N, 1, 1.0);
        let mut cur = x.clone();
        for _ in 0..5 {
            let next = a.spmm(&cur);
            prop_assert!(
                next.frobenius_norm() <= cur.frobenius_norm() * (1.0 + 1e-4),
                "norm grew under A_n"
            );
            cur = next;
        }
    }

    /// Sparse transpose is an involution and spmm agrees with the dense path.
    #[test]
    fn sparse_laws(triplets in prop::collection::vec((0usize..6, 0usize..5, -3.0f32..3.0), 0..20)) {
        let s = SparseMatrix::from_triplets(6, 5, &triplets);
        prop_assert_eq!(s.transpose().transpose(), s.clone());
        let x = Matrix::filled(5, 3, 0.5);
        let via_sparse = s.spmm(&x);
        let via_dense = s.to_dense().matmul(&x);
        for (a, b) in via_sparse.as_slice().iter().zip(via_dense.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4 * (1.0 + a.abs()));
        }
    }

    /// khop neighbourhoods are monotone in the hop count and never include
    /// the centre.
    #[test]
    fn khop_monotone(es in edges(N), v in 0..N) {
        let g = CsrGraph::from_edges(N, &es);
        let mut prev: Vec<usize> = Vec::new();
        for hops in 1..4 {
            let cur = g.khop_neighbors(v, hops);
            prop_assert!(!cur.contains(&v));
            for p in &prev {
                prop_assert!(cur.contains(p), "hop set shrank");
            }
            prev = cur;
        }
    }

    /// Connected-component labels agree with BFS reachability.
    #[test]
    fn components_match_bfs(es in edges(N)) {
        let g = CsrGraph::from_edges(N, &es);
        let (labels, _) = e2gcl_graph::traversal::connected_components(&g);
        let d0 = e2gcl_graph::traversal::bfs_distances(&g, 0);
        for v in 0..N {
            prop_assert_eq!(labels[v] == labels[0], d0[v] != usize::MAX);
        }
    }
}
