#!/usr/bin/env bash
# Repository CI gate. Run from the workspace root: ./ci.sh
#
# Steps:
#   1. cargo fmt --check          — formatting
#   2. cargo clippy -D warnings   — lints across the whole workspace
#   3. cargo test -q              — unit, integration, and property tests
#   3b. scalar-fallback goldens   — the determinism suites re-run with
#                                   E2GCL_KERNEL_CONFIG=scalar so the
#                                   non-SIMD fallback keeps reproducing the
#                                   committed scalar fingerprints
#   4. grep lint                  — no .unwrap()/panic! in non-test library
#                                   code of the crates that run training
#                                   (use .expect("reason") or a TrainError)
#   5. grep lint                  — NumericGuard is constructed only by the
#                                   training engine (engine.rs); models must
#                                   go through EpochDriver
#   6. release smoke run          — the quickstart example drives the full
#                                   selector -> views -> EpochDriver stack
#                                   in release mode
#   7. serve smoke run            — train a tiny model, save an artifact,
#                                   reload it, and answer a batch of top-k
#                                   queries through the CLI
#   8. crash-safety smoke         — a fault-injected torn artifact write is
#                                   quarantined on next load, and a durable
#                                   training checkpoint lets `train --resume`
#                                   continue to the same answers as an
#                                   uninterrupted run
#   9. kernel bench smoke         — kernel_bench --quick runs the smallest
#                                   shape of every blocked GEMM kernel and
#                                   fails if any is slower than 0.8x its
#                                   scalar reference, if the committed
#                                   BENCH_kernels.json doesn't parse / shows
#                                   a recorded speedup below 0.8x, or if
#                                   this run's GFLOP/s drops >20% below a
#                                   committed entry with matching (kernel,
#                                   shape, dispatch path) — committed simd
#                                   baselines from a path the host can't
#                                   run are skipped with a message; it also
#                                   measures the sub-quadratic loss kernels
#                                   at n=65536 and fails if smallneg(k=256)
#                                   fwd+bwd exceeds 25% of the projected
#                                   full-softmax cost, or if the committed
#                                   loss-scaling sweep shows smallneg at
#                                   n=65536 slower than 10x its n=8192 time
#  10. mini-batch smoke           — neighbour-sampled GRACE training through
#                                   the CLI with a durable checkpoint; a
#                                   --resume re-run must answer queries
#                                   identically
#  11. loss strategy smoke        — CLI pre-training with --loss smallneg
#                                   and --loss localized must succeed; an
#                                   unknown --loss must exit with a usage
#                                   error, not a panic
#  12. scale bench smoke          — scale_bench --quick trains E2GCL and
#                                   GRACE mini-batch plus one FULL-BATCH
#                                   E2GCL epoch with the small-negative-set
#                                   loss on the smallest slice of the
#                                   streaming products-sim-1m analog; fails
#                                   if the committed BENCH_scale.json is
#                                   missing, lacks 1M-node cases, or lacks
#                                   the full-batch smallneg E2GCL case at
#                                   the million-node tier
#  13. ANN index smoke            — build an IVF index over the serve-smoke
#                                   artifact twice (bitwise-identical files),
#                                   gate measured recall@10 >= 0.95, answer
#                                   an indexed `query`, and run a short
#                                   indexed `serve-bench` with the load
#                                   generator
#  14. serve bench smoke          — serve_latency --quick runs shrunken
#                                   latency/ANN/loadgen tiers and fails if
#                                   the committed BENCH_serve.json is
#                                   missing or below the retrieval contract
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> scalar-fallback goldens: E2GCL_KERNEL_CONFIG=scalar determinism suites"
# The default run above validates the goldens for the host's dispatch path
# (avx2 where available). Forcing the scalar path here proves the fallback
# kernels still reproduce all committed scalar fingerprints (DESIGN.md §16).
E2GCL_KERNEL_CONFIG=scalar cargo test -q --offline -p e2gcl \
    --test golden_determinism --test loss_strategy_determinism

echo "==> lint: no .unwrap()/panic! in non-test library code"
# Test modules in this codebase are trailing `#[cfg(test)] mod tests` blocks,
# so everything before the first #[cfg(test)] is production code. Comment
# lines (incl. doc comments) are skipped.
fail=0
for f in $(find crates/selector/src crates/views/src crates/nn/src crates/e2gcl/src crates/serve/src crates/bench/src/flags.rs crates/bench/src/bin/kernel_bench.rs crates/bench/src/bin/scale_bench.rs crates/bench/src/bin/serve_latency.rs -name '*.rs' | sort); do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {sub(/^[ \t]+/, ""); if ($0 !~ /^\/\//) print FILENAME":"FNR": "$0}' "$f" \
        | grep -E '\.unwrap\(\)|panic!' || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "error: found .unwrap()/panic! in non-test code (use .expect or TrainError)" >&2
    exit 1
fi

echo "==> lint: NumericGuard::new only in the training engine"
# Every model must train through EpochDriver; constructing a guard anywhere
# else bypasses the engine's backoff/recovery sequencing. Same technique as
# above: scan only production code (before the first #[cfg(test)]).
fail=0
for f in $(find crates -name '*.rs' ! -path '*/engine.rs' | sort); do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {sub(/^[ \t]+/, ""); if ($0 !~ /^\/\//) print FILENAME":"FNR": "$0}' "$f" \
        | grep -F 'NumericGuard::new' || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "error: NumericGuard::new outside engine.rs — route training through EpochDriver" >&2
    exit 1
fi

echo "==> release smoke run: quickstart (EpochDriver end to end)"
cargo run --release --offline -q -p e2gcl --example quickstart

echo "==> serve smoke run: train -> save -> reload -> query"
# Exercises the artifact round trip and both --flag=value and --flag value
# option syntaxes end to end through the CLI.
cargo build --release --offline -q -p e2gcl-cli
artifact=target/ci-serve-artifact.bin
rm -f "$artifact"
target/release/e2gcl-cli train --dataset=cora-sim --scale=0.05 --epochs=3 --save "$artifact"
test -s "$artifact"
query_out=$(target/release/e2gcl-cli query --artifact="$artifact" --node 0 --k 5)
echo "$query_out"
echo "$query_out" | grep -q "top-5 cosine neighbours"
[ "$(echo "$query_out" | grep -c 'score')" -eq 5 ]
# Capture instead of piping into grep -q: early-exit grep would close the
# pipe and kill the CLI mid-print.
inductive_out=$(target/release/e2gcl-cli query --artifact="$artifact" --node=1 --k=3 --mode=inductive)
echo "$inductive_out" | grep -q "top-3 cosine neighbours"

echo "==> crash-safety smoke: torn write -> quarantine -> resume"
# Simulate a crash mid-save: --fault-torn-write leaves a truncated artifact
# (and exits non-zero), the next load must quarantine it to *.corrupt with a
# typed error, and --resume must pick up the durable checkpoint the crashed
# run left behind and land on the same answers as an uninterrupted run.
crash_artifact=target/ci-crash-artifact.bin
crash_ckpt=target/ci-crash-ckpt.bin
rm -f "$crash_artifact" "$crash_artifact.corrupt" "$crash_ckpt"
crash_flags="--dataset cora-sim --scale 0.05 --epochs 6 --seed 3"
if target/release/e2gcl-cli train $crash_flags --save "$crash_artifact" \
    --checkpoint "$crash_ckpt" --checkpoint-every 2 --fault-torn-write 100; then
    echo "error: torn-write train must exit non-zero" >&2
    exit 1
fi
test -s "$crash_ckpt"                          # the durable checkpoint survived the crash
[ "$(stat -c %s "$crash_artifact")" -eq 100 ]  # the artifact is torn
if load_out=$(target/release/e2gcl-cli query --artifact "$crash_artifact" --node 0 --k 3 2>&1); then
    echo "error: loading a torn artifact must fail" >&2
    exit 1
fi
echo "$load_out" | grep -q "artifact quarantined to"
test -s "$crash_artifact.corrupt"              # quarantined aside...
test ! -e "$crash_artifact"                    # ...not left in place
target/release/e2gcl-cli train $crash_flags --save "$crash_artifact" \
    --checkpoint "$crash_ckpt" --checkpoint-every 2 --resume true
clean_artifact=target/ci-crash-clean.bin
target/release/e2gcl-cli train $crash_flags --save "$clean_artifact"
resumed_q=$(target/release/e2gcl-cli query --artifact "$crash_artifact" --node 0 --k 5 2>/dev/null)
clean_q=$(target/release/e2gcl-cli query --artifact "$clean_artifact" --node 0 --k 5 2>/dev/null)
[ "$resumed_q" = "$clean_q" ]                  # resume converged on the clean answers
rm -f "$crash_artifact" "$crash_artifact.corrupt" "$crash_ckpt" "$clean_artifact"

echo "==> kernel bench smoke: scalar/blocked/simd tiers + loss n-scaling gate + committed-baseline perf regression"
cargo run --release --offline -q -p e2gcl-bench --bin kernel_bench -- --quick
test -s target/bench-results/kernel_bench_quick.json

echo "==> mini-batch smoke: sampled subgraph training + durable resume"
# Train GRACE on neighbour-sampled mini-batches with a durable checkpoint,
# then re-run with --resume: the checkpoint records the final epoch, so the
# resumed run restores it and must serve the same answers. (The artifact
# bytes themselves differ only in the embedded config JSON's resume flag;
# tests/resume_determinism.rs proves the mini-batch resume bitwise.)
mb_artifact=target/ci-minibatch-artifact.bin
mb_resumed=target/ci-minibatch-resumed.bin
mb_ckpt=target/ci-minibatch-ckpt.bin
rm -f "$mb_artifact" "$mb_resumed" "$mb_ckpt"
mb_flags="--dataset cora-sim --scale 0.05 --epochs 2 --seed 3 --model GRACE --minibatch true --batch-nodes 48 --fanout 4"
target/release/e2gcl-cli train $mb_flags --save "$mb_artifact" \
    --checkpoint "$mb_ckpt" --checkpoint-every 1
test -s "$mb_artifact"
test -s "$mb_ckpt"
target/release/e2gcl-cli train $mb_flags --save "$mb_resumed" \
    --checkpoint "$mb_ckpt" --checkpoint-every 1 --resume true
mb_q1=$(target/release/e2gcl-cli query --artifact "$mb_artifact" --node 0 --k 5)
mb_q2=$(target/release/e2gcl-cli query --artifact "$mb_resumed" --node 0 --k 5)
[ "$mb_q1" = "$mb_q2" ]            # resume reproduced the run's answers
rm -f "$mb_artifact" "$mb_resumed" "$mb_ckpt"

echo "==> loss strategy smoke: CLI --loss smallneg/localized end to end"
# The sub-quadratic loss kernels through the CLI surface: a smallneg and a
# localized pre-train must both succeed, and an unknown strategy must be a
# usage error (exit 2), not a panic.
loss_flags="--dataset cora-sim --scale 0.05 --epochs 2 --seed 3"
target/release/e2gcl-cli pretrain $loss_flags --loss smallneg --negatives 64 \
    --out target/ci-loss-smallneg.json
test -s target/ci-loss-smallneg.json
target/release/e2gcl-cli pretrain $loss_flags --loss localized --loss-hops 2 \
    --out target/ci-loss-localized.json
test -s target/ci-loss-localized.json
if target/release/e2gcl-cli pretrain $loss_flags --loss bogus \
    --out target/ci-loss-bogus.json 2>/dev/null; then
    echo "FAIL: --loss bogus was accepted"; exit 1
fi
rm -f target/ci-loss-smallneg.json target/ci-loss-localized.json

echo "==> scale bench smoke: mini-batch + full-batch smallneg on the streaming 1M-tier analog"
cargo run --release --offline -q -p e2gcl-bench --bin scale_bench -- --quick
test -s target/bench-results/scale_bench_quick.json

echo "==> ANN index smoke: deterministic build, recall gate, indexed serving"
# Reuses the artifact trained by the serve smoke stage. build-index prints a
# measured recall over evenly-spaced stored queries; gate it at the 0.95
# contract, then prove the build is reproducible by rebuilding to the same
# bytes and serve through the index end to end.
test -s "$artifact"
ix_a=target/ci-index-a.ivf
ix_b=target/ci-index-b.ivf
rm -f "$ix_a" "$ix_b"
ix_out=$(target/release/e2gcl-cli build-index --artifact "$artifact" --out "$ix_a" --recall-k 10)
echo "$ix_out"
recall=$(echo "$ix_out" | sed -n 's/^recall@10 over .* stored queries: //p')
awk -v r="$recall" 'BEGIN { exit !(r >= 0.95) }' || {
    echo "error: recall@10 $recall is below the 0.95 contract" >&2
    exit 1
}
target/release/e2gcl-cli build-index --artifact "$artifact" --out "$ix_b" --recall-k 10 > /dev/null
cmp "$ix_a" "$ix_b"                            # rebuild is bitwise identical
ivf_q=$(target/release/e2gcl-cli query --artifact "$artifact" --node 0 --k 5 --index ivf --index-path "$ix_a")
echo "$ivf_q" | grep -q "top-5 cosine neighbours"
[ "$(echo "$ivf_q" | grep -c 'score')" -eq 5 ]
bench_json=target/ci-serve-bench.json
rm -f "$bench_json"
target/release/e2gcl-cli serve-bench --artifact "$artifact" --rounds 5 --overload-rounds 5 \
    --index ivf --index-path "$ix_a" --target-qps 2000 --loadgen-requests 200 --json "$bench_json"
grep -q '"index"' "$bench_json"                # the index config is recorded...
grep -q '"loadgen"' "$bench_json"              # ...alongside the load-generator section
rm -f "$ix_a" "$ix_b" "$bench_json"

echo "==> serve bench smoke: latency/ANN/loadgen quick tiers + recorded baseline"
cargo run --release --offline -q -p e2gcl-bench --bin serve_latency -- --quick
test -s target/bench-results/serve_latency_quick.json

echo "CI passed."
