//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha keystream generator (the 8-round variant of the
//! RFC 8439 quarter-round network, 64-bit block counter), not a toy LCG: the
//! workspace routes *all* experiment randomness through it, so stream quality
//! matters. Word order within a block follows the natural little-endian
//! state layout; it is deterministic and stable across platforms but not
//! bit-identical to the upstream crate, which is fine because nothing in the
//! workspace asserts golden values against upstream streams.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Exports the exact stream position as `(key, counter, idx)`.
    ///
    /// `counter` is the block index the *next* refill will use and `idx` the
    /// next unread word of the current block (16 ⇒ exhausted). Together with
    /// the key this pins the generator to a single word in the keystream, so
    /// [`ChaCha8Rng::from_state`] resumes bit-exactly.
    pub fn state(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.idx)
    }

    /// Reconstructs a generator at an exact stream position from
    /// [`ChaCha8Rng::state`].
    ///
    /// The buffered block is not part of the exported state: when `idx < 16`
    /// the block at `counter - 1` is recomputed from the key, which is what
    /// `refill` produced before it advanced the counter.
    pub fn from_state(key: [u32; 8], counter: u64, idx: usize) -> Self {
        let idx = idx.min(16);
        let mut rng = Self {
            key,
            counter,
            buf: [0; 16],
            idx: 16,
        };
        if idx < 16 {
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.idx = idx;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: nonce, fixed to zero (single stream).
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (&s, &i)) in self.buf.iter_mut().zip(state.iter().zip(&input)) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_looks_balanced() {
        // Crude bit-balance check over 64k words: each of the 32 bit
        // positions should be set roughly half the time.
        let mut r = ChaCha8Rng::seed_from_u64(123);
        let n = 65_536u32;
        let mut ones = [0u32; 32];
        for _ in 0..n {
            let w = r.next_u32();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += (w >> bit) & 1;
            }
        }
        for &count in &ones {
            let frac = f64::from(count) / f64::from(n);
            assert!((0.48..0.52).contains(&frac), "bit bias: {frac}");
        }
    }

    #[test]
    fn state_round_trips_mid_block() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32(); // leaves idx mid-block (37 % 16 = 5)
        }
        let (key, counter, idx) = a.state();
        assert!(idx < 16, "test must exercise the buffered-block path");
        let mut b = ChaCha8Rng::from_state(key, counter, idx);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trips_fresh_and_exhausted() {
        // Fresh generator: idx == 16, never refilled.
        let a = ChaCha8Rng::seed_from_u64(11);
        let (key, counter, idx) = a.state();
        assert_eq!((counter, idx), (0, 16));
        let mut b = ChaCha8Rng::from_state(key, counter, idx);
        let mut a = a;
        for _ in 0..48 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        // Exactly exhausted block: idx lands back on 16 after 16 draws... it
        // does not (idx wraps via refill on the next draw), so force the
        // boundary by drawing a full block.
        let mut c = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..16 {
            c.next_u32();
        }
        let (key, counter, idx) = c.state();
        assert_eq!(idx, 16);
        let mut d = ChaCha8Rng::from_state(key, counter, idx);
        for _ in 0..64 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn known_answer_is_stable() {
        // Regression pin: the first word for seed 0 must never change, or
        // every "reproducible" experiment in the workspace silently shifts.
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, 0);
    }
}
