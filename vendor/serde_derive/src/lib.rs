//! Offline stand-in for `serde_derive`.
//!
//! Emits `impl serde::Serialize` / `impl serde::Deserialize` for the
//! value-tree model of the vendored `serde` crate. The input item is parsed
//! directly from the `proc_macro` token stream (no `syn`/`quote`, since the
//! build has no registry access), which limits support to what the
//! workspace actually derives on:
//!
//! * non-generic structs with named fields,
//! * non-generic enums with unit, newtype, and struct variants,
//! * the field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything outside that set fails the build with an explicit message
//! rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and the serde attributes we honour on it.
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

enum VariantShape {
    Unit,
    /// Exactly one unnamed field, e.g. `Failed(String)`.
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => serialize_struct(&name, fields),
        Shape::Enum(variants) => serialize_enum(&name, variants),
    };
    body.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => deserialize_struct(&name, fields),
        Shape::Enum(variants) => deserialize_enum(&name, variants),
    };
    body.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --- input parsing ------------------------------------------------------

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes (doc comments etc.) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive stand-in: `{name}` must have a brace body (named fields), got {other:?}"
        ),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    (name, shape)
}

/// Consumes leading `#[...]` attributes at `*i`, returning the serde flags.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let group = match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        };
        *i += 2;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("serde_derive: malformed #[serde(...)], got {other:?}"),
        };
        let args: Vec<TokenTree> = args.into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            match &args[j] {
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    default = true;
                    j += 1;
                }
                TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                    let lit = match (args.get(j + 1), args.get(j + 2)) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(l)))
                            if eq.as_char() == '=' =>
                        {
                            l.to_string()
                        }
                        other => panic!(
                            "serde_derive: skip_serializing_if needs a string path, got {other:?}"
                        ),
                    };
                    skip_if = Some(lit.trim_matches('"').to_string());
                    j += 3;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                other => {
                    panic!("serde_derive stand-in: unsupported serde attribute item {other:?}")
                }
            }
        }
    }
    (default, skip_if)
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (default, skip_if) = parse_attrs(&tokens, &mut i);
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _ = parse_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // A single unnamed field is a newtype variant; anything with
                // a top-level comma has several fields, which we don't
                // generate code for.
                let mut depth = 0i32;
                for tok in g.stream() {
                    if let TokenTree::Punct(p) = &tok {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => panic!(
                                "serde_derive stand-in: multi-field tuple variant \
                                 `{name}` is not supported"
                            ),
                            _ => {}
                        }
                    }
                }
                if g.stream().is_empty() {
                    panic!("serde_derive stand-in: empty tuple variant `{name}` is not supported")
                }
                i += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --- code generation ----------------------------------------------------

fn push_field_expr(out: &mut String, field: &Field, accessor: &str) {
    let Field { name, skip_if, .. } = field;
    let push = format!(
        "__fields.push((::std::string::String::from(\"{name}\"), \
         ::serde::Serialize::to_value({accessor})));"
    );
    match skip_if {
        Some(path) => {
            out.push_str(&format!("if !({path})({accessor}) {{ {push} }}\n"));
        }
        None => {
            out.push_str(&push);
            out.push('\n');
        }
    }
}

fn object_literal(fields: &[Field], accessor: impl Fn(&Field) -> String) -> String {
    let mut out = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        push_field_expr(&mut out, f, &accessor(f));
    }
    out.push_str("::serde::Value::Object(__fields) }");
    out
}

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let body = object_literal(fields, |f| format!("&self.{}", f.name));
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantShape::Newtype => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Serialize::to_value(__f0))]),\n"
            )),
            VariantShape::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let inner = object_literal(fields, |f| f.name.clone());
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                     ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                    binds = binders.join(", "),
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

/// `name: <expr>,` initialiser for one field read out of `__obj`.
fn field_initializer(type_name: &str, field: &Field) -> String {
    let fname = &field.name;
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        // Absent Option fields become None (Null deserializes to None);
        // everything else surfaces a missing-field error.
        format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
             ::serde::Error::custom(\"{type_name}: missing field `{fname}`\"))?"
        )
    };
    format!(
        "{fname}: match ::serde::object_get(__obj, \"{fname}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let inits: String = fields.iter().map(|f| field_initializer(name, f)).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let __obj = __v.as_object().ok_or_else(|| \
         ::serde::Error::custom(\"{name}: expected object\"))?;\n\
         ::std::result::Result::Ok({name} {{ {inits} }})\n\
         }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantShape::Newtype => tagged_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantShape::Struct(fields) => {
                let inits: String = fields.iter().map(|f| field_initializer(name, f)).collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let __obj = __inner.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
         return match __s {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
         \"{name}: unknown variant `{{}}`\", __other))),\n\
         }};\n\
         }}\n\
         if let ::std::option::Option::Some(__entries) = __v.as_object() {{\n\
         if __entries.len() == 1 {{\n\
         let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
         return match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
         \"{name}: unknown variant `{{}}`\", __other))),\n\
         }};\n\
         }}\n\
         }}\n\
         ::std::result::Result::Err(::serde::Error::custom(\
         \"{name}: expected variant string or single-key object\"))\n\
         }}\n\
         }}"
    )
}
