//! Offline stand-in for `criterion`.
//!
//! Provides the same authoring surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) but a much simpler engine: each benchmark runs a
//! one-iteration warmup, then `sample_size` timed samples of one iteration
//! each, and reports min / mean / max wall-clock time to stdout. No
//! statistical analysis, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver. One per process, passed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name, self.sample_size, &bencher.samples);
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.label);
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        report(&label, self.criterion.sample_size, &bencher.samples);
    }

    /// Ends the group. (No-op; exists for API compatibility.)
    pub fn finish(self) {}
}

/// Identifier combining a function name and an input parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Records timed iterations of a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`. The closure's return value is dropped after timing
    /// so cheap results are not optimized away when wrapped in
    /// `std::hint::black_box` by the caller.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup iteration, untimed.
        let _ = routine();
        // The caller-facing sample count is applied in `report`; record a
        // generous fixed number here so both paths share one code shape.
        for _ in 0..SAMPLES_RECORDED {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

const SAMPLES_RECORDED: usize = 10;

fn report(name: &str, sample_size: usize, samples: &[Duration]) {
    let used = &samples[..samples.len().min(sample_size)];
    if used.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = used.iter().min().copied().unwrap_or_default();
    let max = used.iter().max().copied().unwrap_or_default();
    let total: Duration = used.iter().sum();
    let mean = total / used.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        used.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions plus a `Criterion` configuration into a
/// single runner function, mirroring the real macro's field syntax.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_target(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| std::hint::black_box(2 + 2)));
    }

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + SAMPLES_RECORDED timed iterations.
        assert_eq!(runs, 1 + SAMPLES_RECORDED);
    }

    #[test]
    fn group_and_id_compose_labels() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("grp");
        let input = 7usize;
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 64), &input, |b, &i| {
            b.iter(|| {
                seen = i;
            })
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn macros_expand() {
        criterion_group! {
            name = my_group;
            config = Criterion::default().sample_size(2);
            targets = trivial_target
        }
        my_group();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
