//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of the `rand` traits it actually uses:
//! [`RngCore`], [`SeedableRng`] and the [`Rng`] extension trait with `gen`
//! and `gen_range`. Distributions are uniform only; integer ranges use an
//! unbiased widening-multiply rejection step and floats use the standard
//! 24/53-bit mantissa construction, so streams are deterministic and
//! well-distributed even though they do not bit-match upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the same
    /// construction `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open `Range` (`rng.gen_range(a..b)`).
pub trait UniformSample: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased integer in `[0, span)` via Lemire's widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = range.end.abs_diff(range.start) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                range.start + (range.end - range.start) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut r = Counter(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(2.0f32..3.0);
            assert!((2.0..=3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = Counter(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
