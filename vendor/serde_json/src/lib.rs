//! Offline stand-in for `serde_json`: JSON text to and from the vendored
//! `serde` crate's [`Value`] tree.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers are kept as `u64`/`i64` when they are
//! integral so 64-bit seeds round-trip exactly; floats print with Rust's
//! shortest-round-trip formatting, so `f32`/`f64` values survive a text
//! round-trip bit-for-bit. Non-finite floats serialize as `null`, matching
//! the real crate's behaviour.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// --- writing ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, depth, '[', ']', items.iter(), |o, item, d| {
                write_value(o, item, indent, d)
            })
        }
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |o, (key, val), d| {
                write_string(o, key);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, val, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(Error::custom("unpaired surrogate in \\u escape"));
            }
            self.pos += 2;
            let second = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(Error::custom("invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(code).ok_or_else(|| Error::custom("invalid \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        let f = 0.100000024f32; // not representable exactly in decimal
        assert_eq!(from_str::<f32>(&to_string(&f).unwrap()).unwrap(), f);
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\t\"quoted\" \\ slash ünïcode \u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn vectors_round_trip() {
        let v = vec![1usize, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<usize>>(&json).unwrap(), v);
        assert_eq!(from_str::<Vec<usize>>("[]").unwrap(), Vec::<usize>::new());
        assert_eq!(from_str::<Vec<usize>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = vec![vec![1u32], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Vec<usize>>("[1,").is_err());
        assert!(from_str::<bool>("truthy").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("12 34").is_err());
    }

    #[test]
    fn derived_struct_round_trips() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Probe {
            count: usize,
            #[serde(default)]
            scale: f32,
            name: String,
            maybe: Option<u32>,
        }
        let p = Probe {
            count: 3,
            scale: 1.5,
            name: "x\"y".into(),
            maybe: None,
        };
        let json = to_string(&p).unwrap();
        let back: Probe = from_str(&json).unwrap();
        assert_eq!(back, p);
        // `scale` is #[serde(default)], `maybe` is an Option: both survive
        // being absent from the input.
        let partial: Probe = from_str("{\"count\":1,\"name\":\"n\"}").unwrap();
        assert_eq!(
            partial,
            Probe {
                count: 1,
                scale: 0.0,
                name: "n".into(),
                maybe: None
            }
        );
        // A missing mandatory field is an error that names the field.
        let err = from_str::<Probe>("{\"name\":\"n\"}").unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn derived_enum_round_trips() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Mode {
            Plain,
            Tuned { factor: f64, tag: String },
        }
        for m in [
            Mode::Plain,
            Mode::Tuned {
                factor: 2.5,
                tag: "t".into(),
            },
        ] {
            let json = to_string(&m).unwrap();
            let back: Mode = from_str(&json).unwrap();
            assert_eq!(back, m);
        }
        assert!(from_str::<Mode>("\"Bogus\"").is_err());
    }
}
