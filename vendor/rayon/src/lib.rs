//! Offline stand-in for `rayon`.
//!
//! Exposes the slice/`IntoIterator` entry points the workspace uses
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`) plus the adapter methods chained on them. The
//! data-parallel terminals — [`ParIter::for_each`] and [`ParIter::map`] —
//! genuinely fan out over OS threads via [`std::thread::scope`]; every
//! reduction terminal (`reduce`, `sum`, `collect`, `min_by`, `max_by`,
//! `count`) runs sequentially in item order, so results are **bit-identical**
//! to a single-threaded run regardless of thread count. That is a stronger
//! guarantee than crates.io rayon gives (whose `reduce` tree shape varies),
//! and it is what the workspace's golden determinism tests rely on.
//!
//! Thread count comes from the `RAYON_NUM_THREADS` environment variable
//! (read once): unset or `0` means "one thread per available core", `1`
//! forces the deterministic serial path, larger values cap the fan-out.
//! Small inputs stay serial too — a scoped spawn costs tens of microseconds,
//! so parallelism only pays off past [`MIN_ITEMS_PER_THREAD`] items per
//! worker.
//!
//! [`ParIter`] deliberately does *not* implement [`Iterator`]: every adapter
//! is an inherent method returning another [`ParIter`], which keeps
//! rayon-flavoured signatures (e.g. the two-argument `reduce(identity, op)`)
//! from colliding with the std trait.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

/// A worker must get at least this many items before fanning out: below
/// this, thread-spawn latency dominates any per-item work the workspace
/// performs (a matrix row product, a sampler draw).
const MIN_ITEMS_PER_THREAD: usize = 64;

/// Maximum worker count: `RAYON_NUM_THREADS` if set and non-zero, else the
/// number of available cores. Read once per process.
fn max_threads() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let requested = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok());
        match requested {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    })
}

/// How many workers to use for `len` items under a `cap`: enough that each
/// worker gets at least [`MIN_ITEMS_PER_THREAD`] items, never more than
/// `cap`, and at least one (the serial path).
fn thread_budget(len: usize, cap: usize) -> usize {
    if cap <= 1 {
        return 1;
    }
    cap.min(len / MIN_ITEMS_PER_THREAD).max(1)
}

/// Runs `f` over `items` on `threads` scoped workers, each taking a
/// contiguous in-order batch. Caller guarantees `threads >= 2`.
fn scoped_for_each<T: Send, F: Fn(T) + Sync>(items: Vec<T>, threads: usize, f: F) {
    let chunk = items.len().div_ceil(threads);
    let fr = &f;
    std::thread::scope(|s| {
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            s.spawn(move || batch.into_iter().for_each(fr));
        }
    });
}

/// Maps `items` through `f` on `threads` scoped workers, preserving input
/// order in the output. Caller guarantees `threads >= 2`.
fn scoped_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(
    items: Vec<T>,
    threads: usize,
    f: F,
) -> Vec<O> {
    let chunk = items.len().div_ceil(threads);
    let fr = &f;
    let mut out: Vec<O> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            handles.push(s.spawn(move || batch.into_iter().map(fr).collect::<Vec<O>>()));
        }
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Stand-in for a rayon parallel iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item. Runs eagerly — and in parallel when the input is
    /// large enough — with output order matching input order exactly.
    pub fn map<O, F>(self, f: F) -> ParIter<std::vec::IntoIter<O>>
    where
        I::Item: Send,
        O: Send,
        F: Fn(I::Item) -> O + Sync,
    {
        let items: Vec<I::Item> = self.0.collect();
        let threads = thread_budget(items.len(), max_threads());
        let mapped: Vec<O> = if threads <= 1 {
            items.into_iter().map(f).collect()
        } else {
            scoped_map(items, threads, f)
        };
        ParIter(mapped.into_iter())
    }

    /// Keeps items matching the predicate.
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter(self.0.filter(p))
    }

    /// Filter-and-map in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to an iterator and flattens.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, O, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips two parallel iterators.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Runs `f` on every item, fanning out over scoped threads when the
    /// input is large enough. Items are disjoint by construction (slice
    /// chunks, unique indices), so any interleaving yields the same state.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.0.collect();
        let threads = thread_budget(items.len(), max_threads());
        if threads <= 1 {
            items.into_iter().for_each(f);
        } else {
            scoped_for_each(items, threads, f);
        }
    }

    /// Collects into any `FromIterator` container (sequential, in order).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: folds from `identity()` with `op`, sequentially
    /// in item order (deterministic even for non-associative `op`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the items (sequential, in order).
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Minimum under a comparator.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }

    /// Maximum under a comparator.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }
}

impl<'a, T: Copy + 'a, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copies out of referenced items.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

/// `into_par_iter` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item;
    /// Underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type SeqIter = I::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.into_iter())
    }
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Iterates items by reference.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Iterates non-overlapping chunks of length `n`.
    fn par_chunks(&self, n: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, n: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(n))
    }
}

/// Mutable-slice entry points (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T> {
    /// Iterates items by mutable reference.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Iterates non-overlapping mutable chunks of length `n`.
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(n))
    }
}

/// The trait names rayon users import; everything lives on the entry traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::thread_budget;

    #[test]
    fn map_collect_matches_sequential() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_preserves_order_above_the_parallel_threshold() {
        let n = 10_000usize;
        let v: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|x| x.wrapping_mul(31) ^ 7)
            .collect();
        let expected: Vec<usize> = (0..n).map(|x| x.wrapping_mul(31) ^ 7).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn zip_enumerate_for_each() {
        let mut out = vec![0usize; 4];
        let addend = [10usize, 20, 30, 40];
        out.par_iter_mut()
            .zip(addend.par_iter())
            .enumerate()
            .for_each(|(i, (o, &a))| {
                *o = a + i;
            });
        assert_eq!(out, vec![10, 21, 32, 43]);
    }

    #[test]
    fn large_for_each_writes_every_chunk() {
        let n = 64 * 1024;
        let mut data = vec![0u32; n];
        data.par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        for (i, chunk) in data.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&c| c == i as u32), "chunk {i}");
        }
    }

    #[test]
    fn rayon_style_reduce() {
        let best = (0..100usize)
            .into_par_iter()
            .map(|v| (v, (50 - v as i64).abs()))
            .reduce(
                || (usize::MAX, i64::MAX),
                |a, b| if b.1 < a.1 { b } else { a },
            );
        assert_eq!(best.0, 50);
    }

    #[test]
    fn chunks_mut_partitions() {
        let mut data = vec![0u32; 9];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn thread_budget_policy() {
        // Serial cap forces the serial path regardless of size.
        assert_eq!(thread_budget(1 << 20, 1), 1);
        // Tiny inputs stay serial even with many cores.
        assert_eq!(thread_budget(63, 16), 1);
        // Each worker must earn its spawn.
        assert_eq!(thread_budget(128, 16), 2);
        assert_eq!(thread_budget(64 * 16, 16), 16);
        // Large inputs saturate the cap.
        assert_eq!(thread_budget(1 << 20, 8), 8);
        // Empty input is serial.
        assert_eq!(thread_budget(0, 8), 1);
    }

    #[test]
    fn float_sum_is_order_stable() {
        // Non-associative f32 accumulation must not depend on thread count:
        // `sum` folds sequentially by contract.
        let xs: Vec<f32> = (0..10_000).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let par: f32 = xs.par_iter().copied().sum();
        let seq: f32 = xs.iter().copied().sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }
}
