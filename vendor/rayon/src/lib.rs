//! Offline stand-in for `rayon`.
//!
//! Exposes the slice/`IntoIterator` entry points the workspace uses
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`) plus the adapter methods chained on them, executing
//! everything **sequentially** on the calling thread. Results are therefore
//! identical to the parallel versions for the deterministic, order-oblivious
//! reductions the workspace performs — just without the speedup, which an
//! offline build cannot get from crates.io rayon anyway.
//!
//! [`ParIter`] deliberately does *not* implement [`Iterator`]: every adapter
//! is an inherent method returning another [`ParIter`], which keeps
//! rayon-flavoured signatures (e.g. the two-argument `reduce(identity, op)`)
//! from colliding with the std trait.

#![forbid(unsafe_code)]

/// Sequential stand-in for a rayon parallel iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps items matching the predicate.
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter(self.0.filter(p))
    }

    /// Filter-and-map in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to an iterator and flattens.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, O, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips two parallel iterators.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: folds from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Minimum under a comparator.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }

    /// Maximum under a comparator.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }
}

impl<'a, T: Copy + 'a, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copies out of referenced items.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

/// `into_par_iter` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item;
    /// Underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Converts into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type SeqIter = I::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.into_iter())
    }
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Iterates items by reference.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Iterates non-overlapping chunks of length `n`.
    fn par_chunks(&self, n: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, n: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(n))
    }
}

/// Mutable-slice entry points (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T> {
    /// Iterates items by mutable reference.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Iterates non-overlapping mutable chunks of length `n`.
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(n))
    }
}

/// The trait names rayon users import; everything lives on the entry traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_for_each() {
        let mut out = vec![0usize; 4];
        let addend = [10usize, 20, 30, 40];
        out.par_iter_mut()
            .zip(addend.par_iter())
            .enumerate()
            .for_each(|(i, (o, &a))| {
                *o = a + i;
            });
        assert_eq!(out, vec![10, 21, 32, 43]);
    }

    #[test]
    fn rayon_style_reduce() {
        let best = (0..100usize)
            .into_par_iter()
            .map(|v| (v, (50 - v as i64).abs()))
            .reduce(
                || (usize::MAX, i64::MAX),
                |a, b| if b.1 < a.1 { b } else { a },
            );
        assert_eq!(best.0, 50);
    }

    #[test]
    fn chunks_mut_partitions() {
        let mut data = vec![0u32; 9];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }
}
