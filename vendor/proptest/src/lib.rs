//! Offline stand-in for `proptest`.
//!
//! Runs each property as a fixed number of randomized cases drawn from a
//! deterministic per-test RNG (seeded from the test's module path and name),
//! so failures reproduce exactly across runs. Shrinking is not implemented:
//! a failing case reports its assertion message directly. The supported
//! surface is what this workspace uses — `proptest! { ... }` with an
//! optional `#![proptest_config(...)]`, range and tuple strategies,
//! `any::<T>()`, `prop::collection::vec`, `.prop_map`, `prop_oneof!`, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test deterministic RNG (SplitMix64 over a name-derived seed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from the test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then one mixing round so short names diverge quickly.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Marker returned by `prop_assume!` when a sampled case is rejected.
#[derive(Clone, Copy, Debug)]
pub struct Rejection;

/// Runner configuration. Only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every drawn `value`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy {lo}..{hi}");
                let off = rng.below((hi - lo) as u64) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 200.0 - 100.0) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 200.0 - 100.0
    }
}

/// Strategy for [`Arbitrary`] types, created by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Object-safe view of [`Strategy`], used by [`Union`] / `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Draws one value through the erased strategy.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Boxes a strategy for use in a [`Union`]. Called by `prop_oneof!`.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(s)
}

/// Uniform choice among several strategies with a common value type.
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample_dyn(rng)
    }
}

/// Collection-size specification accepted by [`prop::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive; hi <= lo means "exactly lo"
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<T>` built by [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Vectors whose elements come from `element` and whose length is
        /// drawn from `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any,
        ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions that run their body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: config resolved, expand each fn into a case loop.
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // The immediately-invoked closure gives `prop_assume!` an
                // early-return target without a labelled block.
                #[allow(unreachable_code, clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::Rejection> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if __outcome.is_err() {
                    // Case rejected by prop_assume!; draw the next one.
                    continue;
                }
            }
        }
    )*};
    // Leading #![proptest_config(...)] overrides the case count.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Rejects the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejection);
        }
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($option)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_respect_bounds");
        for _ in 0..1000 {
            let n = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&n));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::TestRng::from_name("vec_and_map_compose");
        let strat = prop::collection::vec(0usize..10, 2..6).prop_map(|v| v.len());
        for _ in 0..200 {
            let len = strat.sample(&mut rng);
            assert!((2..6).contains(&len));
        }
        let exact = prop::collection::vec(0.0f32..1.0, 12usize);
        assert_eq!(exact.sample(&mut rng).len(), 12);
    }

    #[test]
    fn union_draws_all_options() {
        let mut rng = crate::TestRng::from_name("union_draws_all_options");
        let strat = prop_oneof![
            (0usize..1).prop_map(|_| "a"),
            (0usize..1).prop_map(|_| "b"),
            (0usize..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = crate::TestRng::from_name("y");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    // The macro itself, in both config forms.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_with_config(x in 0usize..100, y in 0usize..100) {
            prop_assume!(x != y);
            prop_assert!(x + y < 200);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(bits in any::<u64>()) {
            prop_assert_eq!(bits.count_ones() + bits.count_zeros(), 64);
        }
    }
}
