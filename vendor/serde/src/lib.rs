//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's visitor-based `Serializer`/`Deserializer`
//! architecture, this stand-in uses a concrete [`Value`] tree as the single
//! data model: [`Serialize`] lowers a type into a `Value` and
//! [`Deserialize`] rebuilds it from one. The only consumer in the workspace
//! is the vendored `serde_json`, which maps `Value` to and from JSON text,
//! so the simplification loses nothing the workspace needs while keeping
//! the public surface (`Serialize`/`Deserialize` traits, derive macros,
//! `#[serde(default)]`, `#[serde(skip_serializing_if = "...")]`) source
//! compatible.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type (de)serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept separate so `u64` seeds round-trip
    /// without passing through `f64`).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// First value stored under `key` in an object's entry list.
pub fn object_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialization error: a plain message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so text round-trips recover the exact f32.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only derived spec types with `&'static str`
    /// name fields hit this, and only in tests; the leak is bounded by the
    /// number of distinct parsed specs.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($len:literal: $($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-element array, got {other:?}",
                        $len
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (2: A 0, B 1);
    (3: A 0, B 1, C 2);
    (4: A 0, B 1, C 2, D 3);
    (5: A 0, B 1, C 2, D 3, E 4);
    (6: A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u64::from_value(&18_446_744_073_709_551_615u64.to_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f32>::from_value(&Some(2.0f32).to_value()).unwrap(),
            Some(2.0)
        );
        assert_eq!(None::<f32>.to_value(), Value::Null);
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
